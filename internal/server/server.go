// Package server is the multi-tenant HTTP/JSON serving layer over the
// repro facade: a registry of named compiled mappings and source graphs,
// per-tenant sessions whose memoized solutions are shared across requests
// (and across tenants querying the same pair), prepared-query reuse,
// chunked streaming responses, and admission control built on the facade's
// typed sentinel errors.
//
// The architecture is three thin layers over repro.Session:
//
//   - a registry: named *repro.CompiledMapping and *repro.Graph entries,
//     registered once, immutable afterwards;
//   - shared backends: one base repro.Session per (mapping, graph) pair,
//     owning the memoized universal/least-informative solutions. Every
//     API-level session — whatever its tenant or budgets — is derived from
//     the pair's backend with Session.Derive, so the expensive artifacts are
//     materialized once per pair, not once per tenant;
//   - API sessions: cheap per-tenant handles (id, derived session, prepared
//     queries, counters) that requests address by id.
//
// Admission control reuses the typed-error vocabulary end to end:
// ErrBadOptions → 400, ErrInfinite/ErrNoSolution → 422, ErrBudgetExceeded →
// 429, ErrCanceled → 499, plus server-level 429 (too many in-flight
// requests) and 503 (draining). See docs/SERVER.md for the full API
// reference and cmd/gsmd for the binary.
package server

import (
	"fmt"
	"log"
	"net/http"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/fault"
)

// Config tunes the server; the zero value means the documented defaults.
type Config struct {
	// MaxInFlight caps concurrently served requests. Excess requests wait
	// in per-tenant queues drained fairly by the resource governor; see
	// MaxQueueDepth. Default 256.
	MaxInFlight int
	// MaxQueueDepth caps each tenant's admission queue: requests beyond it
	// are shed immediately with 503 overloaded and an adaptive Retry-After.
	// Default 64.
	MaxQueueDepth int
	// TenantRPS, when > 0, rate-limits each tenant with a token bucket of
	// TenantRPS tokens per second. Requests over the rate are refused with
	// 429 rate_limited and the refill time as Retry-After, before they can
	// occupy a slot or queue entry. 0 disables rate limiting.
	TenantRPS float64
	// TenantBurst is the token-bucket capacity — how many requests a tenant
	// may issue back-to-back after an idle period. Defaults to TenantRPS
	// rounded up (minimum 1) when rate limiting is on.
	TenantBurst int
	// TenantWeights sets per-tenant admission weights for the governor's
	// deficit-weighted round robin; unlisted tenants weigh 1. Under
	// contention a tenant's slot share is proportional to its weight.
	TenantWeights map[string]int
	// MemBudgetBytes, when > 0, bounds the total estimated resident bytes
	// of shared backends (graphs, materialized solutions, answer caches).
	// Idle backends — those whose sessions have all closed — are retained
	// for reuse and evicted least-recently-used when the budget is
	// exceeded; creating a backend for a NEW (mapping, graph) pair is
	// refused with 503 overloaded when eviction cannot make room, while
	// existing backends keep serving. 0 means unlimited (idle backends are
	// dropped as soon as their last session closes).
	MemBudgetBytes int64
	// MaxSessionsPerTenant caps open sessions per tenant (429/busy on
	// excess). Default 64.
	MaxSessionsPerTenant int
	// DefaultTimeout bounds any query request that does not set its own
	// timeout_ms. Default 30s.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps request bodies (413 beyond it). Default 64 MiB —
	// graph registrations carry whole graphs as text.
	MaxBodyBytes int64
	// BreakerThreshold is the number of consecutive backend failures
	// (panics or internal errors, never client errors) that open a
	// (mapping, graph) pair's circuit breaker. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses requests (503
	// degraded, Retry-After) before letting one half-open probe through.
	// Default 2s.
	BreakerCooldown time.Duration
	// EnableFaultInjection exposes POST /v1/admin/faults so clients (the
	// chaos harness) can arm internal/fault points over HTTP. Off by
	// default: production servers refuse remote fault arming with 403.
	EnableFaultInjection bool
	// Shards is the solution shard count every backend session is opened
	// with (gsmd -shards). 0 or 1 serves unsharded; > 1 materializes per
	// shard and answers navigational RPQs via boundary exchange. Answers
	// are identical either way.
	Shards int
	// Partition is the node→shard partitioning policy name ("hash",
	// "range"); empty means hash. Ignored unless Shards > 1.
	Partition string
	// Logf receives panic stacks and recovery reports. Default log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 64
	}
	if c.TenantRPS > 0 && c.TenantBurst <= 0 {
		c.TenantBurst = int(c.TenantRPS + 0.999)
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.MaxSessionsPerTenant <= 0 {
		c.MaxSessionsPerTenant = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server is the serving state: registry, shared backends, API sessions and
// counters. Safe for concurrent use; create with New and expose via
// Handler.
type Server struct {
	cfg      Config
	gov      *governor
	draining atomic.Bool
	reqWG    sync.WaitGroup

	mu       sync.RWMutex
	mappings map[string]*mappingEntry
	graphs   map[string]*graphEntry
	backends map[backendKey]*backend
	sessions map[string]*apiSession
	nextID   uint64
	// persist is the crash-safe registry store, attached by OpenState; nil
	// means the registry is memory-only (the pre-state-dir behavior).
	persist *persister

	stats struct {
		requests            atomic.Uint64
		rejectedOverloaded  atomic.Uint64
		rejectedRateLimited atomic.Uint64
		rejectedDraining    atomic.Uint64
		rejectedDegraded    atomic.Uint64
		evictions           atomic.Uint64
		queries             atomic.Uint64
		answers             atomic.Uint64
		streams             atomic.Uint64
		oneShots            atomic.Uint64
		errors              atomic.Uint64
		panics              atomic.Uint64
		sessionsCreated     atomic.Uint64
	}

	// testHookStarted, when set by tests, runs after a request passes
	// admission and before its handler — the coordination point for the
	// graceful-shutdown tests.
	testHookStarted func(r *http.Request)
}

type mappingEntry struct {
	info MappingInfo
	text string
	cm   *repro.CompiledMapping
}

type graphEntry struct {
	info GraphInfo
	text string
	g    *repro.Graph
}

// backendKey identifies a shared session backend: one per registered
// (mapping, graph) pair.
type backendKey struct{ mapping, graph string }

// backend owns the base session of one (mapping, graph) pair — and
// therefore the pair's memoized solutions. API sessions derive from it and
// hold a reference. When the last reference closes, the backend is dropped
// immediately without a memory budget; with one it is retained idle — its
// warm materialization serves the pair's next session for free — until the
// governor's LRU eviction reclaims its bytes.
type backend struct {
	key  backendKey
	sess *repro.Session
	refs int
	// bytes is the last estimate of the backend's resident size (source
	// graph plus every memoized artifact); lastUsed is when it last served
	// or was created. Both guarded by Server.mu.
	bytes    int64
	lastUsed time.Time
	// warmed flips once any derived session has run a query, so
	// SessionInfo can report whether a new session joins an already-warm
	// materialization.
	warmed atomic.Bool
	// queryCache memoizes parsed query texts ("lang\x00text" →
	// repro.Query) across all sessions on the pair. Compiled queries are
	// immutable and race-free, and reusing the same query identity lets
	// the engine's per-snapshot lowered-program cache hit instead of
	// re-lowering on every request.
	queryCache sync.Map
	// brk is the pair's circuit breaker: consecutive backend failures open
	// it, refusing the pair's requests with 503 degraded until a half-open
	// probe succeeds. Other pairs (and tenants on them) keep serving.
	brk breaker
}

// parseQueryCached resolves query text through the backend's cache.
func (be *backend) parseQueryCached(lang, text string) (repro.Query, error) {
	key := lang + "\x00" + text
	if v, ok := be.queryCache.Load(key); ok {
		return v.(repro.Query), nil
	}
	q, err := parseQuery(lang, text)
	if err != nil {
		return nil, err
	}
	v, _ := be.queryCache.LoadOrStore(key, q)
	return v.(repro.Query), nil
}

// apiSession is one tenant-visible session handle.
type apiSession struct {
	id      string
	tenant  string
	mapping string
	graph   string
	be      *backend
	sess    *repro.Session // derived from be.sess with the session options
	shared  bool           // backend was already warm at creation

	mu       sync.Mutex
	prepared map[string]*repro.PreparedQuery
	nextPrep uint64

	queries atomic.Uint64
	answers atomic.Uint64
}

func (as *apiSession) info() SessionInfo {
	as.mu.Lock()
	nprep := len(as.prepared)
	as.mu.Unlock()
	return SessionInfo{
		ID:             as.id,
		Tenant:         as.tenant,
		Mapping:        as.mapping,
		Graph:          as.graph,
		Queries:        as.queries.Load(),
		Answers:        as.answers.Load(),
		Prepared:       nprep,
		SharedSolution: as.shared,
	}
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		gov:      newGovernor(cfg),
		mappings: make(map[string]*mappingEntry),
		graphs:   make(map[string]*graphEntry),
		backends: make(map[backendKey]*backend),
		sessions: make(map[string]*apiSession),
	}
}

// BeginDrain flips the server into draining mode: every subsequent request
// (except /healthz, which reports the state) is refused with 503 while
// requests already admitted run to completion. cmd/gsmd calls this before
// http.Server.Shutdown so load balancers see the drain immediately.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// WaitIdle blocks until every admitted request has completed. Used by
// tests; binaries get the same guarantee from http.Server.Shutdown.
func (s *Server) WaitIdle() { s.reqWG.Wait() }

// nameRE validates registry and tenant names: short, path- and log-safe.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

func validName(n string) error {
	if !nameRE.MatchString(n) {
		return fmt.Errorf("%w: name %q (want [A-Za-z0-9][A-Za-z0-9_.-]{0,63})", repro.ErrBadOptions, n)
	}
	return nil
}

// RegisterMappingText parses, compiles and registers a mapping under name.
// Re-registering the same name with identical text is idempotent;
// different text is a conflict (the registry is immutable while in use —
// sessions hold compiled pointers; unused names can be deleted). With a
// state directory attached, the registration is WAL-logged and fsync'd
// before it is acknowledged.
func (s *Server) RegisterMappingText(name, text string) (MappingInfo, error) {
	return s.registerMapping(name, text, true)
}

func (s *Server) registerMapping(name, text string, persist bool) (MappingInfo, error) {
	if err := validName(name); err != nil {
		return MappingInfo{}, err
	}
	m, err := repro.ParseMapping(text)
	if err != nil {
		return MappingInfo{}, fmt.Errorf("%w: mapping text: %v", repro.ErrBadOptions, err)
	}
	cm, err := repro.Compile(m)
	if err != nil {
		return MappingInfo{}, err
	}
	info := MappingInfo{
		Name:       name,
		Rules:      len(cm.Rules()),
		LAV:        cm.IsLAV(),
		GAV:        cm.IsGAV(),
		Relational: cm.IsRelational(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.mappings[name]; ok {
		if prev.text == text {
			return prev.info, nil
		}
		return MappingInfo{}, fmt.Errorf("mapping %q: %w", name, errExists)
	}
	// Write-ahead: the op must be durable before the registry admits it.
	if persist && s.persist != nil {
		if _, err := s.persist.append(opMapping, name, text); err != nil {
			return MappingInfo{}, err
		}
	}
	s.mappings[name] = &mappingEntry{info: info, text: text, cm: cm}
	return info, nil
}

// RegisterGraphText parses and registers a source graph under name, with
// the same idempotence and durability rules as RegisterMappingText. The
// graph is owned by the registry and never mutated, so sessions can freeze
// it once and share the snapshot indefinitely.
func (s *Server) RegisterGraphText(name, text string) (GraphInfo, error) {
	return s.registerGraph(name, text, true)
}

func (s *Server) registerGraph(name, text string, persist bool) (GraphInfo, error) {
	if err := validName(name); err != nil {
		return GraphInfo{}, err
	}
	g, err := repro.ParseGraph(text)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("%w: graph text: %v", repro.ErrBadOptions, err)
	}
	info := GraphInfo{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.graphs[name]; ok {
		if prev.text == text {
			return prev.info, nil
		}
		return GraphInfo{}, fmt.Errorf("graph %q: %w", name, errExists)
	}
	if persist && s.persist != nil {
		if _, err := s.persist.append(opGraph, name, text); err != nil {
			return GraphInfo{}, err
		}
	}
	s.graphs[name] = &graphEntry{info: info, text: text, g: g}
	return info, nil
}

// registerGraphObject registers an already-built graph under name — the
// landing step of the ingest endpoint. The graph is rendered to its
// canonical text once, serving both the WAL record (recovery replays it
// through the same parser as client-registered graphs) and the
// idempotence comparison: re-ingesting identical source data lands on the
// identical text and short-circuits, anything else is a 409.
func (s *Server) registerGraphObject(name string, g *repro.Graph) (GraphInfo, error) {
	if err := validName(name); err != nil {
		return GraphInfo{}, err
	}
	text := g.String()
	info := GraphInfo{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.graphs[name]; ok {
		if prev.text == text {
			return prev.info, nil
		}
		return GraphInfo{}, fmt.Errorf("graph %q: %w", name, errExists)
	}
	if s.persist != nil {
		if _, err := s.persist.append(opGraph, name, text); err != nil {
			return GraphInfo{}, err
		}
	}
	s.graphs[name] = &graphEntry{info: info, text: text, g: g}
	return info, nil
}

// DeleteMapping removes a registered mapping. A mapping serving any live
// backend (open sessions reference it) is refused with a conflict; the
// deletion is WAL-logged before it is applied.
func (s *Server) DeleteMapping(name string) (MappingInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.mappings[name]
	if !ok {
		return MappingInfo{}, fmt.Errorf("mapping %q: %w", name, errNotFound)
	}
	for key, be := range s.backends {
		if key.mapping != name {
			continue
		}
		if be.refs > 0 {
			return MappingInfo{}, fmt.Errorf("%w: mapping %q has open sessions", errInUse, name)
		}
		// Idle backend retained for warmth only: drop it with its mapping.
		delete(s.backends, key)
	}
	if s.persist != nil {
		if _, err := s.persist.append(opDeleteMapping, name, ""); err != nil {
			return MappingInfo{}, err
		}
	}
	delete(s.mappings, name)
	return e.info, nil
}

// DeleteGraph removes a registered graph, with the DeleteMapping rules.
func (s *Server) DeleteGraph(name string) (GraphInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.graphs[name]
	if !ok {
		return GraphInfo{}, fmt.Errorf("graph %q: %w", name, errNotFound)
	}
	for key, be := range s.backends {
		if key.graph != name {
			continue
		}
		if be.refs > 0 {
			return GraphInfo{}, fmt.Errorf("%w: graph %q has open sessions", errInUse, name)
		}
		delete(s.backends, key)
	}
	if s.persist != nil {
		if _, err := s.persist.append(opDeleteGraph, name, ""); err != nil {
			return GraphInfo{}, err
		}
	}
	delete(s.graphs, name)
	return e.info, nil
}

// Checkpoint folds the WAL into a fresh registry snapshot: the full
// registry is written atomically, the WAL truncated, and a wedged log (one
// that refused appends after a failed write) is repaired. No-op without a
// state directory.
func (s *Server) Checkpoint() (CheckpointResponse, error) {
	// The registry lock is held across the entire checkpoint — copy, seq
	// capture, snapshot write, and WAL truncation. Mutations append to the
	// WAL under the write lock, so holding the read lock here guarantees no
	// acknowledged op can land between the copy and the truncation and be
	// destroyed with the old WAL while absent from the snapshot. Checkpoints
	// are rare admin operations; stalling registrations for one fsync is the
	// price of the durability contract.
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := s.persist
	if p == nil {
		return CheckpointResponse{}, fmt.Errorf("%w: no state directory attached", repro.ErrBadOptions)
	}
	var snap registrySnapshot
	for name, e := range s.mappings {
		snap.Mappings = append(snap.Mappings, namedText{Name: name, Text: e.text})
	}
	for name, e := range s.graphs {
		snap.Graphs = append(snap.Graphs, namedText{Name: name, Text: e.text})
	}
	p.mu.Lock()
	snap.Seq = p.seq
	p.mu.Unlock()
	sort.Slice(snap.Mappings, func(i, j int) bool { return snap.Mappings[i].Name < snap.Mappings[j].Name })
	sort.Slice(snap.Graphs, func(i, j int) bool { return snap.Graphs[i].Name < snap.Graphs[j].Name })
	if err := p.checkpoint(snap); err != nil {
		return CheckpointResponse{}, err
	}
	return CheckpointResponse{
		Seq:      snap.Seq,
		Mappings: len(snap.Mappings),
		Graphs:   len(snap.Graphs),
	}, nil
}

// CloseState detaches and closes the state directory (used by tests that
// re-open the same directory to simulate a restart). The server keeps
// serving from memory.
func (s *Server) CloseState() error {
	s.mu.Lock()
	p := s.persist
	s.persist = nil
	s.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.close()
}

// listMappings returns the registered mappings sorted by name.
func (s *Server) listMappings() []MappingInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]MappingInfo, 0, len(s.mappings))
	for _, e := range s.mappings {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// listGraphs returns the registered graphs sorted by name.
func (s *Server) listGraphs() []GraphInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, e := range s.graphs {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// createSession opens an API session for tenant over the named pair,
// deriving it from the pair's shared backend (created on first use). The
// per-tenant session cap refuses excess sessions with ErrBudgetExceeded
// (→ 429), the admission-control analogue of a search budget.
func (s *Server) createSession(tenant string, req CreateSessionRequest) (SessionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	me, ok := s.mappings[req.Mapping]
	if !ok {
		return SessionInfo{}, fmt.Errorf("mapping %q: %w", req.Mapping, errNotFound)
	}
	ge, ok := s.graphs[req.Graph]
	if !ok {
		return SessionInfo{}, fmt.Errorf("graph %q: %w", req.Graph, errNotFound)
	}
	open := 0
	for _, as := range s.sessions {
		if as.tenant == tenant {
			open++
		}
	}
	if open >= s.cfg.MaxSessionsPerTenant {
		return SessionInfo{}, fmt.Errorf("%w: tenant %q already has %d open sessions",
			repro.ErrBudgetExceeded, tenant, open)
	}

	key := backendKey{mapping: req.Mapping, graph: req.Graph}
	be, ok := s.backends[key]
	if !ok {
		// A new pair must fit the memory budget: evict idle backends LRU
		// first, and refuse (503 overloaded) if the resident set is still
		// at the budget — existing backends keep serving untouched.
		if s.cfg.MemBudgetBytes > 0 {
			s.evictForBudgetLocked()
			if resident := s.residentBytesLocked(); resident >= s.cfg.MemBudgetBytes {
				return SessionInfo{}, fmt.Errorf(
					"%w: resident backends hold %d of %d budget bytes and none are idle",
					errOverloaded, resident, s.cfg.MemBudgetBytes)
			}
		}
		// Fault point "server.materialize": backend construction, the
		// moment a (mapping, graph) pair's serving state comes to life.
		if err := fault.Hit("server.materialize"); err != nil {
			return SessionInfo{}, err
		}
		var baseOpts []repro.Option
		if s.cfg.Shards > 1 {
			baseOpts = append(baseOpts, repro.WithShards(s.cfg.Shards))
			if s.cfg.Partition != "" {
				baseOpts = append(baseOpts, repro.WithPartition(s.cfg.Partition))
			}
		}
		base, err := repro.NewSession(me.cm, ge.g, baseOpts...)
		if err != nil {
			return SessionInfo{}, err
		}
		be = &backend{key: key, sess: base, bytes: base.MemoryBytes()}
		be.brk.init(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown)
		s.backends[key] = be
	}
	be.lastUsed = time.Now()
	derived, err := be.sess.Derive(req.Options.options()...)
	if err != nil {
		return SessionInfo{}, err
	}

	s.nextID++
	as := &apiSession{
		id:       fmt.Sprintf("s-%d", s.nextID),
		tenant:   tenant,
		mapping:  req.Mapping,
		graph:    req.Graph,
		be:       be,
		sess:     derived,
		shared:   be.warmed.Load(),
		prepared: make(map[string]*repro.PreparedQuery),
	}
	be.refs++
	s.sessions[as.id] = as
	s.stats.sessionsCreated.Add(1)
	return as.info(), nil
}

// session resolves a tenant's session by id; sessions are tenant-scoped,
// so another tenant's id is indistinguishable from a missing one.
func (s *Server) session(tenant, id string) (*apiSession, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	as, ok := s.sessions[id]
	if !ok || as.tenant != tenant {
		return nil, fmt.Errorf("session %q: %w", id, errNotFound)
	}
	return as, nil
}

// closeSession removes a tenant's session. Without a memory budget the
// shared backend is dropped when its last session closes (the historical
// behavior); with one it is kept idle — warm for the pair's next session —
// and reclaimed by LRU eviction when the budget needs the room.
func (s *Server) closeSession(tenant, id string) (SessionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	as, ok := s.sessions[id]
	if !ok || as.tenant != tenant {
		return SessionInfo{}, fmt.Errorf("session %q: %w", id, errNotFound)
	}
	delete(s.sessions, id)
	as.be.refs--
	if as.be.refs == 0 {
		if s.cfg.MemBudgetBytes <= 0 {
			delete(s.backends, as.be.key)
		} else {
			s.evictForBudgetLocked()
		}
	}
	return as.info(), nil
}

// noteBackendUsage refreshes a backend's byte estimate and LRU stamp after
// it served a request, then re-enforces the budget: artifacts materialized
// by the request (solutions, shards, answer caches) may have grown the
// resident set past it, in which case idle backends are evicted.
func (s *Server) noteBackendUsage(be *backend) {
	bytes := be.sess.MemoryBytes()
	s.mu.Lock()
	be.bytes = bytes
	be.lastUsed = time.Now()
	s.evictForBudgetLocked()
	s.mu.Unlock()
}

// residentBytesLocked sums the byte estimates of all resident backends.
func (s *Server) residentBytesLocked() int64 {
	var total int64
	for _, be := range s.backends {
		total += be.bytes
	}
	return total
}

// evictForBudgetLocked evicts idle (refcount-zero) backends least recently
// used first until the resident set fits the budget or no idle backend
// remains. Each eviction passes the "govern.evict" fault point; an injected
// failure there stops evicting — the server degrades to refusing new pairs
// rather than corrupting live ones. Evicted pairs re-materialize lazily on
// their next session.
func (s *Server) evictForBudgetLocked() {
	if s.cfg.MemBudgetBytes <= 0 {
		return
	}
	for s.residentBytesLocked() > s.cfg.MemBudgetBytes {
		var victim *backend
		for _, be := range s.backends {
			if be.refs > 0 {
				continue
			}
			if victim == nil || be.lastUsed.Before(victim.lastUsed) {
				victim = be
			}
		}
		if victim == nil {
			return
		}
		// Fault point "govern.evict": one per eviction decision.
		if err := fault.Hit("govern.evict"); err != nil {
			s.cfg.Logf("eviction of backend %s/%s failed: %v", victim.key.mapping, victim.key.graph, err)
			return
		}
		delete(s.backends, victim.key)
		s.stats.evictions.Add(1)
		s.cfg.Logf("evicted idle backend %s/%s (%d bytes)", victim.key.mapping, victim.key.graph, victim.bytes)
	}
}

// listSessions returns the tenant's open sessions sorted by id.
func (s *Server) listSessions(tenant string) []SessionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := []SessionInfo{}
	for _, as := range s.sessions {
		if as.tenant == tenant {
			out = append(out, as.info())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// statsSnapshot assembles the /v1/stats body.
func (s *Server) statsSnapshot() StatsResponse {
	s.mu.RLock()
	mappings, graphs := len(s.mappings), len(s.graphs)
	sessions, backends := len(s.sessions), len(s.backends)
	residentBytes := s.residentBytesLocked()
	idleBackends := 0
	for _, be := range s.backends {
		if be.refs == 0 {
			idleBackends++
		}
	}
	p := s.persist
	var shardBackends []ShardBackendStats
	if s.cfg.Shards > 1 {
		for _, be := range s.backends {
			st := be.sess.ShardStats()
			sb := ShardBackendStats{
				Mapping:        be.key.mapping,
				Graph:          be.key.graph,
				Shards:         st.Shards,
				Policy:         st.Policy,
				ExchangeRounds: st.ExchangeRounds,
				BoundaryPairs:  st.BoundaryPairs,
			}
			for _, f := range st.Fragments {
				sb.Fragments = append(sb.Fragments, ShardFragmentWire{
					Nodes: f.Nodes, Edges: f.Edges, Nulls: f.Nulls,
				})
			}
			shardBackends = append(shardBackends, sb)
		}
		sort.Slice(shardBackends, func(i, j int) bool {
			if shardBackends[i].Mapping != shardBackends[j].Mapping {
				return shardBackends[i].Mapping < shardBackends[j].Mapping
			}
			return shardBackends[i].Graph < shardBackends[j].Graph
		})
	}
	s.mu.RUnlock()
	inflight, queued, tenants := s.gov.snapshot()
	resp := StatsResponse{
		Draining:            s.draining.Load(),
		Mappings:            mappings,
		Graphs:              graphs,
		SessionsOpen:        sessions,
		SessionsCreated:     s.stats.sessionsCreated.Load(),
		SharedBackends:      backends,
		IdleBackends:        idleBackends,
		ResidentBytes:       residentBytes,
		MemBudgetBytes:      s.cfg.MemBudgetBytes,
		Evictions:           s.stats.evictions.Load(),
		InFlight:            inflight,
		Queued:              queued,
		Tenants:             tenants,
		Requests:            s.stats.requests.Load(),
		RejectedOverloaded:  s.stats.rejectedOverloaded.Load(),
		RejectedRateLimited: s.stats.rejectedRateLimited.Load(),
		RejectedDraining:    s.stats.rejectedDraining.Load(),
		RejectedDegraded:    s.stats.rejectedDegraded.Load(),
		Queries:             s.stats.queries.Load(),
		Answers:             s.stats.answers.Load(),
		Streams:             s.stats.streams.Load(),
		OneShots:            s.stats.oneShots.Load(),
		Errors:              s.stats.errors.Load(),
		Panics:              s.stats.panics.Load(),
	}
	if s.cfg.Shards > 1 {
		resp.Shards = s.cfg.Shards
		resp.Partition = s.cfg.Partition
		if resp.Partition == "" {
			resp.Partition = "hash"
		}
		resp.ShardBackends = shardBackends
	}
	if p != nil {
		p.mu.Lock()
		resp.Persistent = true
		resp.WALSeq = p.seq
		resp.WALWedged = p.wedged
		p.mu.Unlock()
	}
	return resp
}

func millis(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
