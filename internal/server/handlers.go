package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"repro"
	"repro/internal/fault"
	"repro/internal/ingest"
)

// Handler builds the HTTP API. Every endpoint except /healthz runs behind
// the admission wrapper (draining → 503, in-flight cap → 429); tenants are
// identified by the X-Tenant header (default "default") and never see each
// other's sessions.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)

	mux.HandleFunc("GET /v1/stats", s.wrap(s.handleStats))
	mux.HandleFunc("POST /v1/mappings", s.wrap(s.handleRegisterMapping))
	mux.HandleFunc("GET /v1/mappings", s.wrap(s.handleListMappings))
	mux.HandleFunc("GET /v1/mappings/{name}", s.wrap(s.handleGetMapping))
	mux.HandleFunc("POST /v1/graphs", s.wrap(s.handleRegisterGraph))
	mux.HandleFunc("GET /v1/graphs", s.wrap(s.handleListGraphs))
	mux.HandleFunc("GET /v1/graphs/{name}", s.wrap(s.handleGetGraph))
	mux.HandleFunc("POST /v1/graphs/{name}/ingest", s.wrap(s.handleIngest))
	mux.HandleFunc("POST /v1/sessions", s.wrap(s.handleCreateSession))
	mux.HandleFunc("GET /v1/sessions", s.wrap(s.handleListSessions))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.wrap(s.handleCloseSession))
	mux.HandleFunc("POST /v1/sessions/{id}/prepare", s.wrap(s.handlePrepare))
	mux.HandleFunc("POST /v1/sessions/{id}/query", s.wrap(s.handleQuery))
	mux.HandleFunc("POST /v1/sessions/{id}/stream", s.wrap(s.handleStream))
	mux.HandleFunc("POST /v1/query", s.wrap(s.handleOneShot))
	mux.HandleFunc("DELETE /v1/mappings/{name}", s.wrap(s.handleDeleteMapping))
	mux.HandleFunc("DELETE /v1/graphs/{name}", s.wrap(s.handleDeleteGraph))
	mux.HandleFunc("POST /v1/admin/checkpoint", s.wrap(s.handleCheckpoint))
	mux.HandleFunc("GET /v1/admin/faults", s.wrap(s.handleGetFaults))
	mux.HandleFunc("POST /v1/admin/faults", s.wrap(s.handleArmFaults))
	return mux
}

// statusWriter tracks whether the response header was committed, so the
// panic recovery in wrap knows if it can still write an error body.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the streaming endpoint keeps
// its chunked flushes through the wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap is the admission and isolation middleware: counts the request,
// refuses new work while draining (503, Retry-After derived from the
// estimated drain time), admits it through the resource governor —
// per-tenant rate limits, weighted-fair queueing under the in-flight cap,
// deadline-aware shedding, all refusals carrying adaptive Retry-After
// hints — tracks in-flight requests for WaitIdle, and converts a handler
// panic into a logged 500 so one request's crash never takes down the
// process or any other tenant's in-flight work.
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		if s.draining.Load() {
			s.stats.rejectedDraining.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(s.gov.drainHint())))
			writeJSON(w, http.StatusServiceUnavailable,
				ErrorBody{Error: "server is draining", Kind: "draining"})
			return
		}
		ten, err := tenant(r)
		if err != nil {
			s.writeError(w, err)
			return
		}
		// The admission wait is bounded by the server's default timeout —
		// the same budget the request's execution gets — so the governor
		// can shed requests whose estimated queue wait already exceeds it.
		actx, acancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
		release, err := s.gov.admit(actx, ten)
		acancel()
		if err != nil {
			switch {
			case errors.Is(err, errRateLimited):
				s.stats.rejectedRateLimited.Add(1)
			case errors.Is(err, errOverloaded):
				s.stats.rejectedOverloaded.Add(1)
			}
			s.writeError(w, err)
			return
		}
		s.reqWG.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				s.stats.panics.Add(1)
				s.stats.errors.Add(1)
				s.cfg.Logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						ErrorBody{Error: fmt.Sprintf("internal panic: %v", rec), Kind: "panic"})
				}
			}
			release()
			s.reqWG.Done()
		}()
		if hook := s.testHookStarted; hook != nil {
			hook(r)
		}
		// Fault point "server.handler": request entry, after admission.
		if err := fault.Hit("server.handler"); err != nil {
			s.writeError(sw, err)
			return
		}
		h(sw, r)
	}
}

// runBackend gates one backend call through the pair's circuit breaker:
// refused while open (503 degraded + Retry-After), failure accounting on
// backend errors and panics (the panic is re-raised for wrap to log),
// streak reset on success. Client errors — bad options, budgets, not
// found, cancellation — are neutral: they never trip the breaker, but they
// also never close it or reset the failure streak, since they carry no
// verdict on backend health (a half-open probe that hits one merely
// releases the probe slot for the next request).
func (s *Server) runBackend(be *backend, fn func() error) error {
	if err := be.brk.allow(); err != nil {
		s.stats.rejectedDegraded.Add(1)
		return err
	}
	completed := false
	defer func() {
		if !completed {
			be.brk.onFailure()
		}
	}()
	err := fn()
	completed = true
	switch {
	case err == nil:
		be.brk.onSuccess()
	case isBackendFailure(err):
		be.brk.onFailure()
	default:
		be.brk.onSkip() // caller mistake, not a backend verdict
	}
	return err
}

// isBackendFailure reports whether an error indicates backend ill-health
// (trips the breaker) rather than a caller mistake: exactly the errors the
// status table maps to 500.
func isBackendFailure(err error) bool {
	status, _ := statusKind(err)
	return status == http.StatusInternalServerError
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// tenant extracts and validates the request's tenant.
func tenant(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		return "default", nil
	}
	if err := validName(t); err != nil {
		return "", fmt.Errorf("%w: X-Tenant %q", repro.ErrBadOptions, t)
	}
	return t, nil
}

func (s *Server) handleRegisterMapping(w http.ResponseWriter, r *http.Request) {
	var req RegisterMappingRequest
	if !s.decode(w, r, &req) {
		return
	}
	info, err := s.RegisterMappingText(req.Name, req.Text)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListMappings(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listMappings())
}

func (s *Server) handleGetMapping(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	e, ok := s.mappings[name]
	s.mu.RUnlock()
	if !ok {
		s.writeError(w, fmt.Errorf("mapping %q: %w", name, errNotFound))
		return
	}
	writeJSON(w, http.StatusOK, e.info)
}

func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var req RegisterGraphRequest
	if !s.decode(w, r, &req) {
		return
	}
	info, err := s.RegisterGraphText(req.Name, req.Text)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listGraphs())
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	e, ok := s.graphs[name]
	s.mu.RUnlock()
	if !ok {
		s.writeError(w, fmt.Errorf("graph %q: %w", name, errNotFound))
		return
	}
	writeJSON(w, http.StatusOK, e.info)
}

// handleIngest streams a relational bulk load into the graph registry:
// the request carries an ingest schema plus per-table CSV payloads, the
// response is NDJSON — one progress chunk per committed batch, then a
// terminal done chunk with the registered GraphInfo and load report, or a
// terminal error chunk. The graph lands (WAL-logged, same durability rule
// as POST /v1/graphs) only after the whole load succeeds; any failure —
// bad data under the strict policy, an injected ingest.commit fault, a
// timeout — leaves the registry untouched.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validName(name); err != nil {
		s.writeError(w, err)
		return
	}
	var req IngestRequest
	if !s.decode(w, r, &req) {
		return
	}
	schema, err := ingest.ParseSchema(req.Schema)
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: ingest schema: %v", repro.ErrBadOptions, err))
		return
	}
	if len(req.Tables) == 0 {
		s.writeError(w, fmt.Errorf("%w: ingest request carries no table payloads", repro.ErrBadOptions))
		return
	}
	// Sources assemble in schema order so a load is deterministic
	// regardless of JSON map order; a payload table the schema doesn't
	// declare is a caller mistake surfaced before the stream commits.
	srcs := make([]ingest.Source, 0, len(req.Tables))
	for i := range schema.Tables {
		tab := schema.Tables[i].Name
		if text, ok := req.Tables[tab]; ok {
			srcs = append(srcs, ingest.CSVString(tab, text))
		}
	}
	if len(srcs) != len(req.Tables) {
		for tab := range req.Tables {
			if _, ok := schema.Table(tab); !ok {
				s.writeError(w, fmt.Errorf("%w: payload table %q is not in the schema", repro.ErrBadOptions, tab))
				return
			}
		}
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	// From here on the 200 header is committed; failures travel in-band
	// as a terminal NDJSON error chunk, the handleStream contract.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			enc.Encode(IngestChunk{Error: fmt.Sprintf("internal panic: %v", rec), Kind: "panic"})
			flush()
			panic(rec)
		}
	}()
	fail := func(err error) {
		s.stats.errors.Add(1)
		_, kind := statusKind(err)
		enc.Encode(IngestChunk{Error: err.Error(), Kind: kind})
		flush()
	}
	opts := ingest.Options{
		BatchSize:   req.BatchSize,
		SkipBadRows: req.SkipBadRows,
		// The pipeline invokes Progress from its writer loop, which Load
		// runs on this goroutine — writing to the response here is safe.
		Progress: func(p ingest.Progress) {
			enc.Encode(IngestChunk{Table: p.Table, Rows: p.Rows, Skipped: p.Skipped, Nodes: p.Nodes, Edges: p.Edges})
			flush()
		},
	}
	g, rep, err := ingest.Load(ctx, schema, opts, srcs...)
	if err != nil {
		fail(fmt.Errorf("ingest: %w", err))
		return
	}
	info, err := s.registerGraphObject(name, g)
	if err != nil {
		fail(err)
		return
	}
	enc.Encode(IngestChunk{Done: true, Graph: &info, Report: &IngestReport{
		Rows:        rep.Rows,
		Skipped:     rep.Skipped,
		DroppedFKs:  rep.DroppedFKs,
		Batches:     rep.Batches,
		FullBuilds:  rep.FullBuilds,
		DeltaBuilds: rep.DeltaBuilds,
		ElapsedMS:   float64(rep.Elapsed) / float64(time.Millisecond),
	}})
	flush()
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	ten, err := tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req CreateSessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	info, err := s.createSession(ten, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	ten, err := tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.listSessions(ten))
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	ten, err := tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	info, err := s.closeSession(ten, r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	ten, err := tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	as, err := s.session(ten, r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req PrepareRequest
	if !s.decode(w, r, &req) {
		return
	}
	q, err := parseQuery(req.Lang, req.Query)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p := repro.PrepareQuery(q)
	// Bind eagerly: materializes the pair's universal solution (once per
	// backend) and lowers the query onto its snapshot, so the first query
	// against the prepared handle pays nothing. Materialization is a
	// backend call — it runs behind the pair's circuit breaker.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	if err := s.runBackend(as.be, func() error { return p.Bind(ctx, as.sess) }); err != nil {
		s.writeError(w, err)
		return
	}
	as.be.warmed.Store(true)
	s.noteBackendUsage(as.be)
	as.mu.Lock()
	as.nextPrep++
	id := fmt.Sprintf("p-%d", as.nextPrep)
	as.prepared[id] = p
	as.mu.Unlock()
	writeJSON(w, http.StatusOK, PrepareResponse{Prepared: id})
}

// resolveQuery turns a QueryRequest into a runnable query: either a
// prepared handle or freshly parsed text.
func (as *apiSession) resolveQuery(req QueryRequest) (repro.Query, error) {
	switch {
	case req.Prepared != "" && req.Query != "":
		return nil, fmt.Errorf("%w: set either query or prepared, not both", repro.ErrBadOptions)
	case req.Prepared != "":
		as.mu.Lock()
		p, ok := as.prepared[req.Prepared]
		as.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("prepared query %q: %w", req.Prepared, errNotFound)
		}
		return p, nil
	case req.Query != "":
		// Resolve through the backend's parsed-query cache: repeated
		// replays of the same text (the serving hot path) reuse one query
		// identity, so the engine's per-snapshot lowered programs hit too.
		return as.be.parseQueryCached(req.Lang, req.Query)
	default:
		return nil, fmt.Errorf("%w: query text or prepared handle required", repro.ErrBadOptions)
	}
}

// parseQuery compiles query text in the requested language.
func parseQuery(lang, text string) (repro.Query, error) {
	var q repro.Query
	var err error
	switch lang {
	case "ree", "":
		q, err = repro.ParseREE(text)
	case "rem":
		q, err = repro.ParseREM(text)
	case "rpq":
		q, err = repro.ParseRPQ(text)
	default:
		return nil, fmt.Errorf("%w: unknown query language %q (want ree, rem or rpq)", repro.ErrBadOptions, lang)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %s query %q: %v", repro.ErrBadOptions, lang, text, err)
	}
	return q, nil
}

// requestSession returns the session a request should run on: the API
// session's own derived session, or a further per-request derivation when
// the request overrides budgets.
func (as *apiSession) requestSession(req QueryRequest) (*repro.Session, error) {
	if req.Options.isZero() {
		return as.sess, nil
	}
	return as.sess.Derive(req.Options.options()...)
}

// requestContext wraps the HTTP request context with the per-request
// timeout (or the server default). Cancellations — client disconnect,
// deadline — surface from the facade as ErrCanceled → 499.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = millis(timeoutMS)
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ten, err := tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	as, err := s.session(ten, r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	q, err := as.resolveQuery(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sess, err := as.requestSession(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	start := time.Now()
	var ans *repro.Answers
	err = s.runBackend(as.be, func() error {
		switch req.Algo {
		case "null", "":
			ans, err = sess.CertainNull(ctx, q)
		case "least":
			ans, err = sess.CertainLeastInformative(ctx, q)
		case "exact":
			ans, err = sess.CertainExact(ctx, q)
		default:
			err = fmt.Errorf("%w: unknown algo %q (want null, least or exact)", repro.ErrBadOptions, req.Algo)
		}
		return err
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	as.be.warmed.Store(true)
	s.noteBackendUsage(as.be)
	as.queries.Add(1)
	as.answers.Add(uint64(ans.Len()))
	s.stats.queries.Add(1)
	s.stats.answers.Add(uint64(ans.Len()))
	writeJSON(w, http.StatusOK, QueryResponse{
		Algo:      orDefault(req.Algo, "null"),
		Count:     ans.Len(),
		Answers:   AnswersWire(ans),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// streamFlushEvery is how many NDJSON answer lines are buffered between
// flushes on the streaming endpoint.
const streamFlushEvery = 64

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	ten, err := tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	as, err := s.session(ten, r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	q, err := as.resolveQuery(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sess, err := as.requestSession(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	if err := as.be.brk.allow(); err != nil {
		s.stats.rejectedDegraded.Add(1)
		s.writeError(w, err)
		return
	}
	var seq func(func(repro.Answer, error) bool)
	switch req.Algo {
	case "null", "":
		seq = sess.CertainNullSeq(ctx, q)
	case "least":
		seq = sess.CertainLeastInformativeSeq(ctx, q)
	default:
		as.be.brk.onSkip() // caller mistake, not a backend verdict
		s.writeError(w, fmt.Errorf("%w: streaming supports algo null or least, not %q",
			repro.ErrBadOptions, req.Algo))
		return
	}

	// From here on the 200 header is committed; evaluation errors travel
	// in-band as a terminal NDJSON error chunk, so a reader always sees
	// either {"done":true} or {"error":...} — never a silent truncation.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
	// A panic mid-stream (a handler bug, or an armed panic point) still
	// owes the reader a terminal record: emit it, count the backend
	// failure, then re-raise for wrap to log the stack — the committed 200
	// means wrap's recovery writes no second body.
	defer func() {
		if rec := recover(); rec != nil {
			as.be.brk.onFailure()
			enc.Encode(StreamChunk{Error: fmt.Sprintf("internal panic: %v", rec), Kind: "panic"})
			flush()
			panic(rec)
		}
	}()
	count := 0
	for a, err := range seq {
		if err == nil {
			// Fault point "server.stream": mid-flight, after the header is
			// committed — exercises the terminal-error path of readers.
			err = fault.Hit("server.stream")
		}
		if err != nil {
			_, kind := statusKind(err)
			s.stats.errors.Add(1)
			if isBackendFailure(err) {
				as.be.brk.onFailure()
			} else {
				as.be.brk.onSkip() // client error mid-stream: no health verdict
			}
			enc.Encode(StreamChunk{Error: err.Error(), Kind: kind})
			flush()
			return
		}
		wire := Answer{From: nodeWire(a.From), To: nodeWire(a.To)}
		enc.Encode(StreamChunk{Answer: &wire})
		count++
		if count%streamFlushEvery == 0 {
			flush()
		}
	}
	as.be.brk.onSuccess()
	as.be.warmed.Store(true)
	s.noteBackendUsage(as.be)
	as.queries.Add(1)
	as.answers.Add(uint64(count))
	s.stats.streams.Add(1)
	s.stats.answers.Add(uint64(count))
	enc.Encode(StreamChunk{Done: true, Count: count})
	flush()
}

// handleOneShot is the amortization baseline: a throwaway session per
// request, re-materializing the pair's solution every time. It reuses the
// registered compiled mapping, so the measured gap against session queries
// is exactly the solution/materialization reuse.
func (s *Server) handleOneShot(w http.ResponseWriter, r *http.Request) {
	var req OneShotRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.mu.RLock()
	me, okM := s.mappings[req.Mapping]
	ge, okG := s.graphs[req.Graph]
	s.mu.RUnlock()
	if !okM {
		s.writeError(w, fmt.Errorf("mapping %q: %w", req.Mapping, errNotFound))
		return
	}
	if !okG {
		s.writeError(w, fmt.Errorf("graph %q: %w", req.Graph, errNotFound))
		return
	}
	q, err := parseQuery(req.Lang, req.Query)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// A fresh session: nothing memoized, the whole materialization is paid
	// inside this request.
	sess, err := repro.NewSession(me.cm, ge.g, req.Options.options()...)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	start := time.Now()
	var ans *repro.Answers
	switch req.Algo {
	case "null", "":
		ans, err = sess.CertainNull(ctx, q)
	case "least":
		ans, err = sess.CertainLeastInformative(ctx, q)
	case "exact":
		ans, err = sess.CertainExact(ctx, q)
	default:
		err = fmt.Errorf("%w: unknown algo %q (want null, least or exact)", repro.ErrBadOptions, req.Algo)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.stats.oneShots.Add(1)
	s.stats.answers.Add(uint64(ans.Len()))
	writeJSON(w, http.StatusOK, QueryResponse{
		Algo:      orDefault(req.Algo, "null"),
		Count:     ans.Len(),
		Answers:   AnswersWire(ans),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleDeleteMapping(w http.ResponseWriter, r *http.Request) {
	info, err := s.DeleteMapping(r.PathValue("name"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	info, err := s.DeleteGraph(r.PathValue("name"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Checkpoint()
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// faultsResponse snapshots the armed plan for the admin endpoints.
func faultsResponse() FaultsResponse {
	spec, seed, points, ok := fault.Status()
	return FaultsResponse{Armed: ok, Spec: spec, Seed: seed, Points: points}
}

func (s *Server) handleGetFaults(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableFaultInjection {
		s.writeError(w, fmt.Errorf("fault injection: %w", errForbidden))
		return
	}
	writeJSON(w, http.StatusOK, faultsResponse())
}

// handleArmFaults arms (or, with an empty spec, disarms) the process-wide
// fault plan. Only available when the server was started with fault
// injection enabled — this is a chaos-testing surface, not a production
// one.
func (s *Server) handleArmFaults(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableFaultInjection {
		s.writeError(w, fmt.Errorf("fault injection: %w", errForbidden))
		return
	}
	var req FaultsRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := fault.Arm(req.Spec, req.Seed); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", repro.ErrBadOptions, err))
		return
	}
	s.cfg.Logf("fault plan armed: %q (seed %d)", req.Spec, req.Seed)
	writeJSON(w, http.StatusOK, faultsResponse())
}

// decode reads a JSON request body, reporting malformed input as 400
// (bad_options). Returns false when it already wrote the error response.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		s.writeError(w, fmt.Errorf("%w: request body: %v", repro.ErrBadOptions, err))
		return false
	}
	return true
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.stats.errors.Add(1)
	status, kind := statusKind(err)
	// Refusals a well-behaved client should back off from carry a
	// Retry-After hint: the breaker's remaining cooldown when one is
	// attached, else one second for the generically-retryable statuses.
	if sec := retryAfterSeconds(err); sec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(sec))
	} else if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorBody{Error: err.Error(), Kind: kind})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// ceilSeconds rounds a duration up to whole seconds, minimum 1 — the
// resolution of the Retry-After header.
func ceilSeconds(d time.Duration) int {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}
