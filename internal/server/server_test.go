package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/workload"
)

// testScenario is a small deterministic serving scenario shared by the
// server tests.
func testScenario(t testing.TB) workload.ServingScenario {
	t.Helper()
	return workload.Serving(workload.ServingSpec{Nodes: 120, Edges: 360, Queries: 8, Seed: 7})
}

// newTestServer returns a server with the scenario pair registered as
// mapping "m" / graph "g".
func newTestServer(t testing.TB, cfg Config) (*Server, workload.ServingScenario) {
	t.Helper()
	sc := testScenario(t)
	s := New(cfg)
	if _, err := s.RegisterMappingText("m", sc.MappingText); err != nil {
		t.Fatalf("register mapping: %v", err)
	}
	if _, err := s.RegisterGraphText("g", sc.GraphText); err != nil {
		t.Fatalf("register graph: %v", err)
	}
	return s, sc
}

// do runs one request through the handler and decodes the JSON response
// into out (if non-nil), returning the status code.
func do(t testing.TB, h http.Handler, method, path, tenant string, body, out any) int {
	t.Helper()
	var r *http.Request
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = httptest.NewRequest(method, path, bytes.NewReader(b))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	if tenant != "" {
		r.Header.Set("X-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if out != nil && w.Code/100 == 2 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding response %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code
}

// errKind decodes an error response body's kind.
func errKind(t testing.TB, h http.Handler, method, path, tenant string, body any) (int, string) {
	t.Helper()
	var r *http.Request
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = httptest.NewRequest(method, path, bytes.NewReader(b))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	if tenant != "" {
		r.Header.Set("X-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("%s %s: error body %q: %v", method, path, w.Body.String(), err)
	}
	return w.Code, eb.Kind
}

// TestStatusKind pins the typed-error → HTTP status table of
// docs/SERVER.md.
func TestStatusKind(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{errNotFound, http.StatusNotFound, "not_found"},
		{errExists, http.StatusConflict, "exists"},
		{repro.ErrBadOptions, http.StatusBadRequest, "bad_options"},
		{repro.ErrInfinite, http.StatusUnprocessableEntity, "infinite"},
		{repro.ErrNoSolution, http.StatusUnprocessableEntity, "no_solution"},
		{repro.ErrBudgetExceeded, http.StatusTooManyRequests, "budget_exceeded"},
		{repro.ErrCanceled, StatusClientClosedRequest, "canceled"},
		{repro.ErrSourceMutated, http.StatusConflict, "source_mutated"},
		{errors.New("boom"), http.StatusInternalServerError, "internal"},
		// Wrapping must not change the mapping.
		{fmt.Errorf("ctx: %w", repro.ErrBudgetExceeded), http.StatusTooManyRequests, "budget_exceeded"},
	}
	for _, c := range cases {
		status, kind := statusKind(c.err)
		if status != c.status || kind != c.kind {
			t.Errorf("statusKind(%v) = %d/%s, want %d/%s", c.err, status, kind, c.status, c.kind)
		}
	}
}

// TestRegistry exercises registration idempotence, conflicts, lookups and
// name validation through the HTTP surface.
func TestRegistry(t *testing.T) {
	s, sc := newTestServer(t, Config{})
	h := s.Handler()

	// Same name, same text: idempotent.
	var mi MappingInfo
	if code := do(t, h, "POST", "/v1/mappings", "", RegisterMappingRequest{Name: "m", Text: sc.MappingText}, &mi); code != 200 {
		t.Fatalf("idempotent re-register: status %d", code)
	}
	if mi.Rules != 3 || !mi.Relational {
		t.Fatalf("mapping info = %+v, want 3 relational rules", mi)
	}
	// Same name, different text: conflict.
	if code, kind := errKind(t, h, "POST", "/v1/mappings", "", RegisterMappingRequest{Name: "m", Text: "rule z -> z\n"}); code != 409 || kind != "exists" {
		t.Fatalf("conflicting re-register: %d/%s, want 409/exists", code, kind)
	}
	// Bad name.
	if code, kind := errKind(t, h, "POST", "/v1/graphs", "", RegisterGraphRequest{Name: "bad name", Text: sc.GraphText}); code != 400 || kind != "bad_options" {
		t.Fatalf("bad name: %d/%s, want 400/bad_options", code, kind)
	}
	// Unparsable text.
	if code, kind := errKind(t, h, "POST", "/v1/graphs", "", RegisterGraphRequest{Name: "g2", Text: "not a graph"}); code != 400 || kind != "bad_options" {
		t.Fatalf("bad graph text: %d/%s, want 400/bad_options", code, kind)
	}
	// Lookups.
	var gi GraphInfo
	if code := do(t, h, "GET", "/v1/graphs/g", "", nil, &gi); code != 200 || gi.Nodes != sc.Graph.NumNodes() {
		t.Fatalf("get graph: status %d info %+v", code, gi)
	}
	if code, kind := errKind(t, h, "GET", "/v1/mappings/nope", "", nil); code != 404 || kind != "not_found" {
		t.Fatalf("missing mapping: %d/%s, want 404/not_found", code, kind)
	}
	var ms []MappingInfo
	if code := do(t, h, "GET", "/v1/mappings", "", nil, &ms); code != 200 || len(ms) != 1 {
		t.Fatalf("list mappings: status %d, %d entries", code, len(ms))
	}
}

// TestQueryMatchesEmbedded runs every scenario query through the server
// (batch and prepared) and compares the canonical wire bytes against the
// embedded repro.Session path — the same cross-validation gsmload -verify
// does over the network.
func TestQueryMatchesEmbedded(t *testing.T) {
	s, sc := newTestServer(t, Config{})
	h := s.Handler()

	cm, err := repro.Compile(sc.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	embedded, err := repro.NewSession(cm, sc.Graph)
	if err != nil {
		t.Fatal(err)
	}

	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "alice", CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != 200 {
		t.Fatalf("create session: status %d", code)
	}
	for i, text := range sc.QueryTexts {
		want, err := embedded.CertainNull(context.Background(), sc.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		wantBytes, err := json.Marshal(AnswersWire(want))
		if err != nil {
			t.Fatal(err)
		}

		var qr QueryResponse
		if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "alice", QueryRequest{Query: text}, &qr); code != 200 {
			t.Fatalf("query %d: status %d", i, code)
		}
		gotBytes, err := json.Marshal(qr.Answers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("query %d (%q): server answers diverge from embedded session\n got %s\nwant %s",
				i, text, gotBytes, wantBytes)
		}

		// The prepared path must return the identical bytes.
		var pr PrepareResponse
		if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/prepare", "alice", PrepareRequest{Query: text}, &pr); code != 200 {
			t.Fatalf("prepare %d: status %d", i, code)
		}
		var qr2 QueryResponse
		if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "alice", QueryRequest{Prepared: pr.Prepared}, &qr2); code != 200 {
			t.Fatalf("prepared query %d: status %d", i, code)
		}
		gotBytes2, err := json.Marshal(qr2.Answers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes2, wantBytes) {
			t.Fatalf("prepared query %d: answers diverge from embedded session", i)
		}
	}
}

// TestStreamMatchesBatch pins the NDJSON streaming endpoint to the batch
// endpoint: same answers, same count, terminal done marker.
func TestStreamMatchesBatch(t *testing.T) {
	s, sc := newTestServer(t, Config{})
	h := s.Handler()
	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "", CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != 200 {
		t.Fatalf("create session: status %d", code)
	}
	for i, text := range sc.QueryTexts {
		var qr QueryResponse
		if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "", QueryRequest{Query: text}, &qr); code != 200 {
			t.Fatalf("batch query %d: status %d", i, code)
		}

		b, _ := json.Marshal(QueryRequest{Query: text})
		r := httptest.NewRequest("POST", "/v1/sessions/"+si.ID+"/stream", bytes.NewReader(b))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != 200 {
			t.Fatalf("stream %d: status %d", i, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("stream %d: content type %q", i, ct)
		}
		var streamed []Answer
		done := false
		scanner := bufio.NewScanner(w.Body)
		for scanner.Scan() {
			var chunk StreamChunk
			if err := json.Unmarshal(scanner.Bytes(), &chunk); err != nil {
				t.Fatalf("stream %d: bad NDJSON line %q: %v", i, scanner.Text(), err)
			}
			switch {
			case chunk.Error != "":
				t.Fatalf("stream %d: in-band error %s (%s)", i, chunk.Error, chunk.Kind)
			case chunk.Done:
				done = true
				if chunk.Count != qr.Count {
					t.Fatalf("stream %d: done count %d != batch count %d", i, chunk.Count, qr.Count)
				}
			case chunk.Answer != nil:
				streamed = append(streamed, *chunk.Answer)
			}
		}
		if !done {
			t.Fatalf("stream %d: no done marker", i)
		}
		// Streamed order is evaluation order; compare as canonical sets.
		key := func(a Answer) string { return fmt.Sprintf("%s|%s", a.From.ID, a.To.ID) }
		got := make(map[string]int)
		for _, a := range streamed {
			got[key(a)]++
		}
		want := make(map[string]int)
		for _, a := range qr.Answers {
			want[key(a)]++
		}
		if len(got) != len(want) {
			t.Fatalf("stream %d: %d distinct answers, batch has %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] == 0 {
				t.Fatalf("stream %d: missing answer %s", i, k)
			}
		}
	}
}

// TestErrorStatuses exercises the error paths end to end through the
// handler: every case must produce the documented status and kind.
func TestErrorStatuses(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxSessionsPerTenant: 1})
	h := s.Handler()

	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "bob", CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != 200 {
		t.Fatalf("create session: status %d", code)
	}

	cases := []struct {
		name         string
		method, path string
		tenant       string
		body         any
		status       int
		kind         string
	}{
		{"missing mapping", "POST", "/v1/sessions", "bob2", CreateSessionRequest{Mapping: "nope", Graph: "g"}, 404, "not_found"},
		{"missing graph", "POST", "/v1/sessions", "bob2", CreateSessionRequest{Mapping: "m", Graph: "nope"}, 404, "not_found"},
		{"tenant session cap", "POST", "/v1/sessions", "bob", CreateSessionRequest{Mapping: "m", Graph: "g"}, 429, "budget_exceeded"},
		{"unknown session", "POST", "/v1/sessions/s-999/query", "bob", QueryRequest{Query: "s"}, 404, "not_found"},
		{"foreign tenant session", "POST", "/v1/sessions/" + si.ID + "/query", "mallory", QueryRequest{Query: "s"}, 404, "not_found"},
		{"unknown algo", "POST", "/v1/sessions/" + si.ID + "/query", "bob", QueryRequest{Query: "s", Algo: "magic"}, 400, "bad_options"},
		{"unknown lang", "POST", "/v1/sessions/" + si.ID + "/query", "bob", QueryRequest{Query: "s", Lang: "sparql"}, 400, "bad_options"},
		{"unparsable query", "POST", "/v1/sessions/" + si.ID + "/query", "bob", QueryRequest{Query: "((("}, 400, "bad_options"},
		{"query and prepared", "POST", "/v1/sessions/" + si.ID + "/query", "bob", QueryRequest{Query: "s", Prepared: "p-1"}, 400, "bad_options"},
		{"neither query nor prepared", "POST", "/v1/sessions/" + si.ID + "/query", "bob", QueryRequest{}, 400, "bad_options"},
		{"unknown prepared", "POST", "/v1/sessions/" + si.ID + "/query", "bob", QueryRequest{Prepared: "p-9"}, 404, "not_found"},
		{"bad per-request options", "POST", "/v1/sessions/" + si.ID + "/query", "bob", QueryRequest{Query: "s", Options: SessionOptions{Workers: -1}}, 400, "bad_options"},
		{"stream exact unsupported", "POST", "/v1/sessions/" + si.ID + "/stream", "bob", QueryRequest{Query: "s", Algo: "exact"}, 400, "bad_options"},
		{"bad tenant name", "POST", "/v1/sessions", "bad tenant!", CreateSessionRequest{Mapping: "m", Graph: "g"}, 400, "bad_options"},
		{"close unknown session", "DELETE", "/v1/sessions/s-999", "bob", nil, 404, "not_found"},
	}
	for _, c := range cases {
		code, kind := errKind(t, h, c.method, c.path, c.tenant, c.body)
		if code != c.status || kind != c.kind {
			t.Errorf("%s: got %d/%s, want %d/%s", c.name, code, kind, c.status, c.kind)
		}
	}

	// Malformed body: raw bytes, not JSON.
	r := httptest.NewRequest("POST", "/v1/sessions/"+si.ID+"/query", strings.NewReader("{not json"))
	r.Header.Set("X-Tenant", "bob")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 400 {
		t.Errorf("malformed body: status %d, want 400", w.Code)
	}

	// A request whose context is already canceled surfaces ErrCanceled →
	// 499 (the nginx client-closed-request convention).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := json.Marshal(QueryRequest{Query: "s t"})
	r = httptest.NewRequest("POST", "/v1/sessions/"+si.ID+"/query", bytes.NewReader(b)).WithContext(ctx)
	r.Header.Set("X-Tenant", "bob")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != StatusClientClosedRequest {
		t.Errorf("canceled context: status %d, want %d (body %s)", w.Code, StatusClientClosedRequest, w.Body.String())
	}
}

// TestSharedBackends verifies the amortization architecture: sessions on
// the same (mapping, graph) pair share one backend; the backend dies with
// its last session; later sessions report the warm materialization.
func TestSharedBackends(t *testing.T) {
	s, sc := newTestServer(t, Config{})
	h := s.Handler()

	var s1, s2 SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "t1", CreateSessionRequest{Mapping: "m", Graph: "g"}, &s1); code != 200 {
		t.Fatalf("create s1: status %d", code)
	}
	var qr QueryResponse
	if code := do(t, h, "POST", "/v1/sessions/"+s1.ID+"/query", "t1", QueryRequest{Query: sc.QueryTexts[0]}, &qr); code != 200 {
		t.Fatalf("warm query: status %d", code)
	}
	// A different tenant's session on the same pair: same backend, already
	// warm.
	if code := do(t, h, "POST", "/v1/sessions", "t2", CreateSessionRequest{Mapping: "m", Graph: "g"}, &s2); code != 200 {
		t.Fatalf("create s2: status %d", code)
	}
	if !s2.SharedSolution {
		t.Error("second session on a warm pair should report shared_solution")
	}
	var st StatsResponse
	if code := do(t, h, "GET", "/v1/stats", "", nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.SharedBackends != 1 {
		t.Errorf("shared_backends = %d, want 1 (both sessions on one pair)", st.SharedBackends)
	}
	if st.SessionsOpen != 2 {
		t.Errorf("sessions_open = %d, want 2", st.SessionsOpen)
	}

	// Tenant isolation: t1 sees only its own session.
	var list []SessionInfo
	if code := do(t, h, "GET", "/v1/sessions", "t1", nil, &list); code != 200 || len(list) != 1 || list[0].ID != s1.ID {
		t.Fatalf("t1 session list = %+v (status %d), want exactly s1", list, code)
	}

	// Closing both drops the backend.
	if code := do(t, h, "DELETE", "/v1/sessions/"+s1.ID, "t1", nil, nil); code != 200 {
		t.Fatalf("close s1: status %d", code)
	}
	if code := do(t, h, "DELETE", "/v1/sessions/"+s2.ID, "t2", nil, nil); code != 200 {
		t.Fatalf("close s2: status %d", code)
	}
	if code := do(t, h, "GET", "/v1/stats", "", nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.SharedBackends != 0 || st.SessionsOpen != 0 {
		t.Errorf("after closing all: backends %d sessions %d, want 0/0", st.SharedBackends, st.SessionsOpen)
	}
}

// TestGracefulDrain verifies the shutdown contract: a request admitted
// before BeginDrain completes normally while requests arriving after it are
// refused with 503/draining.
func TestGracefulDrain(t *testing.T) {
	s, sc := newTestServer(t, Config{})

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookStarted = func(r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/query") {
			once.Do(func() { close(started) })
			<-release
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var si SessionInfo
	{
		b, _ := json.Marshal(CreateSessionRequest{Mapping: "m", Graph: "g"})
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&si); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// In-flight query, parked inside the hook.
	type result struct {
		code int
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(QueryRequest{Query: sc.QueryTexts[0]})
		resp, err := http.Post(ts.URL+"/v1/sessions/"+si.ID+"/query", "application/json", bytes.NewReader(b))
		if err != nil {
			resCh <- result{0, err}
			return
		}
		defer resp.Body.Close()
		resCh <- result{resp.StatusCode, nil}
	}()
	<-started

	// Drain. New requests — even health-adjacent ones like stats — are
	// refused immediately.
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var eb ErrorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Kind != "draining" {
		t.Fatalf("request during drain: %d/%s, want 503/draining", resp.StatusCode, eb.Kind)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("healthz during drain: %d/%s, want 503/draining", hr.StatusCode, health.Status)
	}

	// The parked in-flight request still completes successfully.
	close(release)
	r := <-resCh
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: code %d err %v, want 200", r.code, r.err)
	}
	s.WaitIdle()
}

// TestInflightCap verifies the governed admission path: with MaxInFlight=1
// and one request parked in a handler, the next request queues fairly (and
// completes once the slot frees) while a request beyond the tenant's queue
// bound is shed immediately with 503/overloaded and a Retry-After hint.
func TestInflightCap(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueueDepth: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookStarted = func(r *http.Request) {
		if r.URL.Path == "/v1/stats" {
			once.Do(func() { close(started) })
			<-release
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go func() {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	// Second request: occupies the single queue slot and completes after
	// the parked request releases.
	queuedCode := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/mappings")
		if err != nil {
			queuedCode <- -1
			return
		}
		resp.Body.Close()
		queuedCode <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, queued, _ := s.gov.snapshot(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request: the tenant's queue is full — shed, not queued.
	resp, err := http.Get(ts.URL + "/v1/mappings")
	if err != nil {
		t.Fatal(err)
	}
	var eb ErrorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Kind != "overloaded" {
		t.Fatalf("over-queue request: %d/%s, want 503/overloaded", resp.StatusCode, eb.Kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After hint")
	}

	close(release)
	if code := <-queuedCode; code != http.StatusOK {
		t.Fatalf("queued request completed with %d, want 200", code)
	}
	s.WaitIdle()
}

// TestMultiTenantHammer hammers one shared registry from many tenants
// concurrently — sessions created, queried (batch + prepared + per-request
// options), listed and closed — and cross-checks every answer count against
// the embedded session. Run with -race this is the data-race gate for the
// serving layer.
func TestMultiTenantHammer(t *testing.T) {
	s, sc := newTestServer(t, Config{})
	h := s.Handler()

	cm, err := repro.Compile(sc.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	embedded, err := repro.NewSession(cm, sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := make([]int, len(sc.Queries))
	for i, q := range sc.Queries {
		ans, err := embedded.CertainNull(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		wantCount[i] = ans.Len()
	}

	const goroutines = 16
	const rounds = 4
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", g%5)
			for round := 0; round < rounds; round++ {
				var si SessionInfo
				if code := do(t, h, "POST", "/v1/sessions", tenant, CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != 200 {
					errCh <- fmt.Errorf("g%d r%d: create session status %d", g, round, code)
					return
				}
				for i, text := range sc.QueryTexts {
					req := QueryRequest{Query: text}
					if i%2 == 1 {
						// Alternate per-request budget overrides to
						// exercise the derive path under load.
						req.Options = SessionOptions{ChunkSize: 16 + g}
					}
					var qr QueryResponse
					if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", tenant, req, &qr); code != 200 {
						errCh <- fmt.Errorf("g%d r%d q%d: status %d", g, round, i, code)
						return
					}
					if qr.Count != wantCount[i] {
						errCh <- fmt.Errorf("g%d r%d q%d: count %d, want %d", g, round, i, qr.Count, wantCount[i])
						return
					}
				}
				var list []SessionInfo
				if code := do(t, h, "GET", "/v1/sessions", tenant, nil, &list); code != 200 {
					errCh <- fmt.Errorf("g%d r%d: list status %d", g, round, code)
					return
				}
				if code := do(t, h, "DELETE", "/v1/sessions/"+si.ID, tenant, nil, nil); code != 200 {
					errCh <- fmt.Errorf("g%d r%d: close status %d", g, round, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	var st StatsResponse
	if code := do(t, h, "GET", "/v1/stats", "", nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.SessionsOpen != 0 {
		t.Errorf("sessions_open = %d after hammer, want 0", st.SessionsOpen)
	}
	if st.SessionsCreated != goroutines*rounds {
		t.Errorf("sessions_created = %d, want %d", st.SessionsCreated, goroutines*rounds)
	}
	if st.Queries != goroutines*rounds*uint64(len(sc.QueryTexts)) {
		t.Errorf("queries = %d, want %d", st.Queries, goroutines*rounds*len(sc.QueryTexts))
	}
}
