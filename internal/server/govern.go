package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/fault"
)

// This file is the resource governor: the admission layer that replaced the
// flat in-flight semaphore. Three mechanisms compose, all per tenant:
//
//   - a token bucket (-tenant-rps / -tenant-burst) that bounds each
//     tenant's request *rate* before any queueing — a flooding tenant is
//     answered 429 rate_limited with the exact refill time, and never
//     occupies queue space other tenants could use;
//   - a bounded, deadline-aware wait queue: when the in-flight capacity is
//     full, requests wait in per-tenant FIFO queues drained by
//     deficit-weighted round robin, so a tenant with a thousand queued
//     requests still hands the next free slot to the tenant with one.
//     Requests are shed immediately (503 overloaded) when their tenant's
//     queue is full or when the estimated wait — queue depth times the
//     EWMA service time over capacity — already exceeds the request's
//     deadline: work that cannot finish in time is refused while it is
//     still cheap to refuse;
//   - adaptive Retry-After: every refusal carries a backoff hint computed
//     from the actual queue state (estimated drain time, or token refill
//     time) instead of a constant, so well-behaved clients space their
//     retries to match the real congestion.
//
// Degradation is always *crisp*: a request is served exactly or refused
// with a typed error — never answered approximately.

// errOverloaded marks requests shed by the governor (queue full, deadline
// unmeetable) and backend creations refused by the memory budget. Mapped to
// 503 overloaded with an adaptive Retry-After.
var errOverloaded = errors.New("server overloaded")

// errRateLimited marks requests refused by a tenant's token bucket. Mapped
// to 429 rate_limited with the token refill time as Retry-After.
var errRateLimited = errors.New("tenant rate limit exceeded")

// ewmaPrior is the service-time estimate used before the first completion
// has been observed.
const ewmaPrior = 50 * time.Millisecond

// govWaiter is one queued request. All fields are guarded by governor.mu;
// ready is closed exactly once, when the waiter is granted a slot.
type govWaiter struct {
	ready    chan struct{}
	granted  bool
	canceled bool
}

// tenantGov is one tenant's admission state.
type tenantGov struct {
	name   string
	weight int

	// credit is the tenant's remaining deficit-round-robin grants in the
	// current scheduling pass; reset to weight when the round-robin pointer
	// advances onto the tenant.
	credit int

	queue    []*govWaiter
	inflight int

	// tokens is the token-bucket level; lastRefill the time it was last
	// brought forward. Unused when the governor has no rate limit.
	tokens     float64
	lastRefill time.Time

	admitted    uint64
	shed        uint64
	rateLimited uint64
}

// governor is the admission controller. One per server; all mutable state
// behind mu.
type governor struct {
	capacity   int
	queueDepth int
	rps        float64
	burst      float64
	weights    map[string]int
	now        func() time.Time

	mu       sync.Mutex
	inflight int
	queued   int // live (non-canceled) waiters across all tenants
	tenants  map[string]*tenantGov
	order    []*tenantGov
	rrIndex  int
	// ewmaNS is the exponentially weighted moving average of observed
	// service times, in nanoseconds; 0 until the first completion.
	ewmaNS float64
}

func newGovernor(cfg Config) *governor {
	burst := float64(cfg.TenantBurst)
	if burst < 1 {
		burst = 1
	}
	return &governor{
		capacity:   cfg.MaxInFlight,
		queueDepth: cfg.MaxQueueDepth,
		rps:        cfg.TenantRPS,
		burst:      burst,
		weights:    cfg.TenantWeights,
		now:        time.Now,
		tenants:    make(map[string]*tenantGov),
	}
}

func (g *governor) weightOf(name string) int {
	if w, ok := g.weights[name]; ok && w > 0 {
		return w
	}
	return 1
}

// tenantLocked returns (creating on first use) the tenant's state.
func (g *governor) tenantLocked(name string) *tenantGov {
	ts, ok := g.tenants[name]
	if !ok {
		ts = &tenantGov{
			name:       name,
			weight:     g.weightOf(name),
			tokens:     g.burst,
			lastRefill: g.now(),
		}
		g.tenants[name] = ts
		g.order = append(g.order, ts)
	}
	return ts
}

// ewmaLocked returns the service-time estimate, falling back to the prior.
func (g *governor) ewmaLocked() time.Duration {
	if g.ewmaNS <= 0 {
		return ewmaPrior
	}
	return time.Duration(g.ewmaNS)
}

// estWaitLocked estimates how long a request arriving now would wait for a
// slot: the live queue ahead of it, drained capacity-wide at one EWMA
// service time per slot.
func (g *governor) estWaitLocked() time.Duration {
	return time.Duration(float64(g.queued+1) * float64(g.ewmaLocked()) / float64(g.capacity))
}

// observe folds one completed request's service time into the EWMA.
// Exported within the package so tests can seed the estimate.
func (g *governor) observe(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ewmaNS <= 0 {
		g.ewmaNS = float64(d)
		return
	}
	g.ewmaNS = 0.9*g.ewmaNS + 0.1*float64(d)
}

// drainHint estimates how long until the server is idle — the Retry-After
// for requests refused while draining.
func (g *governor) drainHint() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return time.Duration(float64(g.inflight+g.queued+1) * float64(g.ewmaLocked()) / float64(g.capacity))
}

// admit gates one request for tenant. It returns a release function to be
// called (exactly once) when the request completes, or a typed refusal:
// errRateLimited (token bucket), errOverloaded (queue full / deadline
// unmeetable) or repro.ErrCanceled (ctx done while queued). Refusals carry
// an adaptive Retry-After hint.
func (g *governor) admit(ctx context.Context, tenant string) (release func(), err error) {
	// Fault point "govern.admit": the admission decision, before any
	// accounting — an injected error here sheds the request.
	if err := fault.Hit("govern.admit"); err != nil {
		return nil, err
	}
	g.mu.Lock()
	ts := g.tenantLocked(tenant)

	// Rate limit first: a tenant over its rate never consumes a slot or
	// queue entry, whatever the server-wide load.
	if g.rps > 0 {
		now := g.now()
		ts.tokens += g.rps * now.Sub(ts.lastRefill).Seconds()
		if ts.tokens > g.burst {
			ts.tokens = g.burst
		}
		ts.lastRefill = now
		if ts.tokens < 1 {
			wait := time.Duration((1 - ts.tokens) / g.rps * float64(time.Second))
			ts.rateLimited++
			g.mu.Unlock()
			return nil, retryAfter(fmt.Errorf("%w: tenant %q over %g req/s", errRateLimited, tenant, g.rps), wait)
		}
		ts.tokens--
	}

	// Fast path: free capacity and an empty queue — no reordering hazard.
	if g.inflight < g.capacity && g.queued == 0 {
		g.grantLocked(ts)
		start := g.now()
		g.mu.Unlock()
		return g.releaseFunc(ts, start), nil
	}

	// Shed before queueing when waiting is pointless: tenant queue full,
	// or the estimated wait already blows the request's deadline.
	est := g.estWaitLocked()
	if g.liveQueueLenLocked(ts) >= g.queueDepth {
		ts.shed++
		g.mu.Unlock()
		return nil, retryAfter(fmt.Errorf("%w: tenant %q admission queue full", errOverloaded, tenant), est)
	}
	if dl, ok := ctx.Deadline(); ok && g.now().Add(est).After(dl) {
		ts.shed++
		g.mu.Unlock()
		return nil, retryAfter(fmt.Errorf("%w: estimated wait %s exceeds request deadline",
			errOverloaded, est.Round(time.Millisecond)), est)
	}

	w := &govWaiter{ready: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	g.queued++
	g.dispatchLocked() // capacity may be free with a non-empty queue
	g.mu.Unlock()

	select {
	case <-w.ready:
		start := g.now()
		return g.releaseFunc(ts, start), nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// Lost the race: a slot was granted concurrently with the
			// cancellation. Return it and hand it to the next waiter.
			g.inflight--
			ts.inflight--
			g.dispatchLocked()
			g.mu.Unlock()
			return nil, fmt.Errorf("%w: canceled while queued for admission", repro.ErrCanceled)
		}
		w.canceled = true
		g.queued--
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: canceled while queued for admission", repro.ErrCanceled)
	}
}

// liveQueueLenLocked counts the tenant's non-canceled waiters.
func (g *governor) liveQueueLenLocked(ts *tenantGov) int {
	n := 0
	for _, w := range ts.queue {
		if !w.canceled {
			n++
		}
	}
	return n
}

// grantLocked accounts one admission for ts.
func (g *governor) grantLocked(ts *tenantGov) {
	g.inflight++
	ts.inflight++
	ts.admitted++
}

// releaseFunc returns the idempotent completion callback for one admitted
// request: record the service time, free the slot, wake the next waiter.
func (g *governor) releaseFunc(ts *tenantGov, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			elapsed := g.now().Sub(start)
			g.mu.Lock()
			if g.ewmaNS <= 0 {
				g.ewmaNS = float64(elapsed)
			} else {
				g.ewmaNS = 0.9*g.ewmaNS + 0.1*float64(elapsed)
			}
			g.inflight--
			ts.inflight--
			g.dispatchLocked()
			g.mu.Unlock()
		})
	}
}

// dispatchLocked hands free slots to queued waiters by deficit-weighted
// round robin: the rotating pointer gives each tenant `weight` grants per
// pass, so slot share under contention is proportional to weight, not to
// queue length — a flooding tenant cannot starve a polite one.
func (g *governor) dispatchLocked() {
	if len(g.order) == 0 {
		return
	}
	// Each advance of the pointer resets the next tenant's credit; after a
	// full cycle every tenant has fresh credit, so 2·len(order) advances
	// without a grant means nothing is grantable.
	idle := 0
	for g.inflight < g.capacity && g.queued > 0 && idle <= 2*len(g.order) {
		ts := g.order[g.rrIndex%len(g.order)]
		for len(ts.queue) > 0 && ts.queue[0].canceled {
			ts.queue = ts.queue[1:]
		}
		if len(ts.queue) == 0 || ts.credit <= 0 {
			g.rrIndex++
			g.order[g.rrIndex%len(g.order)].credit = g.weightOf(g.order[g.rrIndex%len(g.order)].name)
			idle++
			continue
		}
		w := ts.queue[0]
		ts.queue = ts.queue[1:]
		ts.credit--
		w.granted = true
		close(w.ready)
		g.queued--
		g.grantLocked(ts)
		idle = 0
	}
}

// TenantStats is one tenant's admission counters on the wire.
type TenantStats struct {
	Tenant      string `json:"tenant"`
	InFlight    int    `json:"in_flight"`
	QueueDepth  int    `json:"queue_depth"`
	Admitted    uint64 `json:"admitted"`
	Shed        uint64 `json:"shed"`
	RateLimited uint64 `json:"rate_limited"`
}

// snapshot reports the governor's state for /v1/stats: global in-flight and
// queued counts plus per-tenant counters, sorted by tenant name.
func (g *governor) snapshot() (inflight, queued int, tenants []TenantStats) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, ts := range g.order {
		tenants = append(tenants, TenantStats{
			Tenant:      ts.name,
			InFlight:    ts.inflight,
			QueueDepth:  g.liveQueueLenLocked(ts),
			Admitted:    ts.admitted,
			Shed:        ts.shed,
			RateLimited: ts.rateLimited,
		})
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Tenant < tenants[j].Tenant })
	return g.inflight, g.queued, tenants
}
