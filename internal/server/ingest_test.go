package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/ingest"
)

const ingestTestSchema = `table customer
col customer id int pk
col customer name text
col customer city text null
table orders
col orders id int pk
col orders customer_id int
col orders total float null
fk orders customer_id customer.id
`

const ingestTestCustomers = "id,name,city\n1,alice,paris\n2,bob,\n3,carol,lyon\n"
const ingestTestOrders = "id,customer_id,total\n10,1,19.50\n11,3,\n12,1,7.25\n"

// ingestDo posts one ingest request and parses the NDJSON response into
// chunks; a non-200 returns the status with no chunks.
func ingestDo(t testing.TB, h http.Handler, name string, req IngestRequest) (int, []IngestChunk) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/graphs/"+name+"/ingest", bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		return w.Code, nil
	}
	var chunks []IngestChunk
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var c IngestChunk
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		chunks = append(chunks, c)
	}
	if len(chunks) == 0 {
		t.Fatalf("ingest stream had no chunks")
	}
	return w.Code, chunks
}

// TestIngestEndpoint drives the full path: CSV payloads stream in as
// NDJSON progress, the graph lands in the registry identical to an
// in-process load, replays are idempotent, conflicting payloads 409 (as a
// terminal chunk), and the landed graph serves certain-answer queries
// over its direct-mapped labels.
func TestIngestEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	req := IngestRequest{
		Schema:    ingestTestSchema,
		Tables:    map[string]string{"customer": ingestTestCustomers, "orders": ingestTestOrders},
		BatchSize: 2,
	}
	code, chunks := ingestDo(t, h, "ing", req)
	if code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	last := chunks[len(chunks)-1]
	if !last.Done || last.Error != "" {
		t.Fatalf("terminal chunk not done: %+v", last)
	}
	if len(chunks) < 2 || chunks[0].Done {
		t.Fatalf("expected progress chunks before the terminal one, got %+v", chunks)
	}
	if chunks[0].Rows == 0 || chunks[0].Table == "" {
		t.Fatalf("first progress chunk empty: %+v", chunks[0])
	}

	// The registered graph must match an in-process load exactly.
	schema, err := ingest.ParseSchema(ingestTestSchema)
	if err != nil {
		t.Fatal(err)
	}
	g, rep, err := ingest.Load(context.Background(), schema, ingest.Options{},
		ingest.CSVString("customer", ingestTestCustomers), ingest.CSVString("orders", ingestTestOrders))
	if err != nil {
		t.Fatal(err)
	}
	if last.Graph == nil || last.Graph.Nodes != g.NumNodes() || last.Graph.Edges != g.NumEdges() {
		t.Fatalf("landed graph %+v, want %d nodes %d edges", last.Graph, g.NumNodes(), g.NumEdges())
	}
	if last.Report == nil || last.Report.Rows != rep.Rows {
		t.Fatalf("report %+v, want %d rows", last.Report, rep.Rows)
	}
	var info GraphInfo
	if code := do(t, h, "GET", "/v1/graphs/ing", "", nil, &info); code != http.StatusOK {
		t.Fatalf("GET landed graph: %d", code)
	}
	if info != *last.Graph {
		t.Fatalf("registry info %+v != terminal chunk %+v", info, *last.Graph)
	}
	s.mu.RLock()
	entry := s.graphs["ing"]
	s.mu.RUnlock()
	if entry.g.String() != g.String() {
		t.Fatalf("registered graph diverged from in-process ingest")
	}

	// Idempotent replay: identical source data short-circuits to the same
	// info; different data for the same name is a conflict, delivered as
	// a terminal error chunk since the load must run before the rendered
	// texts can be compared.
	if _, chunks := ingestDo(t, h, "ing", req); !chunks[len(chunks)-1].Done {
		t.Fatalf("idempotent replay failed: %+v", chunks[len(chunks)-1])
	}
	req2 := req
	req2.Tables = map[string]string{"customer": ingestTestCustomers, "orders": "id,customer_id,total\n99,2,1\n"}
	if _, chunks := ingestDo(t, h, "ing", req2); chunks[len(chunks)-1].Kind != "exists" {
		t.Fatalf("conflicting replay: want kind exists, got %+v", chunks[len(chunks)-1])
	}

	// The landed graph serves queries: a mapping over the direct-mapped
	// FK label turns order placements into certain answers.
	if _, err := s.RegisterMappingText("rel", "rule orders#customer -> placed-by\n"); err != nil {
		t.Fatal(err)
	}
	var sess SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "", CreateSessionRequest{Mapping: "rel", Graph: "ing"}, &sess); code != http.StatusOK {
		t.Fatalf("create session: %d", code)
	}
	var qr QueryResponse
	if code := do(t, h, "POST", "/v1/sessions/"+sess.ID+"/query", "", QueryRequest{Query: "placed-by", Lang: "rpq"}, &qr); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if qr.Count != 3 {
		t.Fatalf("placed-by answers = %d, want 3 (one per order)", qr.Count)
	}
}

// TestIngestBadDataPolicies: under the strict policy a malformed row
// aborts the load with a typed terminal chunk and nothing lands; under
// skip-bad-rows the row is counted and the rest of the load lands.
func TestIngestBadDataPolicies(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	bad := "id,name,city\n1,alice,paris\nnope,bob,lyon\n2,carol,\n"
	req := IngestRequest{
		Schema: ingestTestSchema,
		Tables: map[string]string{"customer": bad, "orders": "id,customer_id,total\n10,1,5\n"},
	}
	_, chunks := ingestDo(t, h, "strict", req)
	last := chunks[len(chunks)-1]
	if last.Kind != "bad_data" || !strings.Contains(last.Error, "row 2") {
		t.Fatalf("strict policy: want bad_data at row 2, got %+v", last)
	}
	if code := do(t, h, "GET", "/v1/graphs/strict", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("failed load landed anyway: GET = %d", code)
	}

	req.SkipBadRows = true
	_, chunks = ingestDo(t, h, "lenient", req)
	last = chunks[len(chunks)-1]
	if !last.Done || last.Report.Skipped != 1 || last.Report.Rows != 3 {
		t.Fatalf("lenient policy: want done with 1 skipped / 3 applied, got %+v", last)
	}
	if code := do(t, h, "GET", "/v1/graphs/lenient", "", nil, nil); code != http.StatusOK {
		t.Fatalf("lenient load did not land: GET = %d", code)
	}
}

// TestIngestRequestValidation covers the failures that must surface as
// regular status codes, before the NDJSON stream commits a 200.
func TestIngestRequestValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name string
		req  IngestRequest
		kind string
	}{
		{"bad schema", IngestRequest{Schema: "what is this", Tables: map[string]string{"x": "a\n"}}, "bad_options"},
		{"no tables", IngestRequest{Schema: ingestTestSchema}, "bad_options"},
		{"undeclared table", IngestRequest{Schema: ingestTestSchema,
			Tables: map[string]string{"ghosts": "id\n1\n"}}, "bad_options"},
	}
	for _, c := range cases {
		code, kind := errKind(t, h, "POST", "/v1/graphs/v/ingest", "", c.req)
		if code != http.StatusBadRequest || kind != c.kind {
			t.Errorf("%s: got %d/%s, want 400/%s", c.name, code, kind, c.kind)
		}
	}
}

// TestIngestedGraphSurvivesRestart: the ingest landing is WAL-logged like
// any client registration, so a crash after the terminal done chunk must
// recover the graph byte-for-byte on the next boot.
func TestIngestedGraphSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	a := New(Config{})
	if _, err := a.OpenState(dir); err != nil {
		t.Fatalf("OpenState: %v", err)
	}
	req := IngestRequest{
		Schema: ingestTestSchema,
		Tables: map[string]string{"customer": ingestTestCustomers, "orders": ingestTestOrders},
	}
	_, chunks := ingestDo(t, a.Handler(), "durable", req)
	if last := chunks[len(chunks)-1]; !last.Done {
		t.Fatalf("ingest failed: %+v", last)
	}
	a.mu.RLock()
	want := a.graphs["durable"].text
	a.mu.RUnlock()
	if err := a.CloseState(); err != nil {
		t.Fatal(err)
	}

	b := New(Config{})
	rec, err := b.OpenState(dir)
	if err != nil {
		t.Fatalf("recovery OpenState: %v", err)
	}
	if rec.Graphs != 1 {
		t.Fatalf("recovered %d graphs, want 1", rec.Graphs)
	}
	b.mu.RLock()
	entry := b.graphs["durable"]
	b.mu.RUnlock()
	if entry == nil || entry.text != want {
		t.Fatalf("recovered graph text diverged from the ingested one")
	}
	if err := b.CloseState(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestCommitFaultDoesNotLand arms the pipeline's fatal commit fault
// point: the load must fail in-band, the registry must stay untouched,
// and a retry after the plan is exhausted must land normally — the
// recovery contract the chaos drill exercises over a real socket.
func TestIngestCommitFaultDoesNotLand(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	if err := fault.Arm("ingest.commit=error:n=1", 5); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	req := IngestRequest{
		Schema: ingestTestSchema,
		Tables: map[string]string{"customer": ingestTestCustomers, "orders": ingestTestOrders},
	}
	_, chunks := ingestDo(t, h, "faulty", req)
	last := chunks[len(chunks)-1]
	if last.Done || !strings.Contains(last.Error, "ingest.commit") {
		t.Fatalf("armed commit fault did not surface: %+v", last)
	}
	if code := do(t, h, "GET", "/v1/graphs/faulty", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("faulted load landed anyway: GET = %d", code)
	}
	// Plan exhausted (n=1): the retry must succeed.
	_, chunks = ingestDo(t, h, "faulty", req)
	if last := chunks[len(chunks)-1]; !last.Done {
		t.Fatalf("retry after fault exhaustion failed: %+v", last)
	}
}
