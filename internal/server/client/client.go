// Package client is the Go client for the gsmd HTTP/JSON API, shared by
// cmd/gsmload, the chaos smoke harness and tests. It adds the retry
// discipline a well-behaved network client owes an overloaded or degraded
// server: capped exponential backoff with seeded jitter, honoring the
// server's Retry-After hints, and an idempotent-only retry policy —
// refusals the server issues before doing work (429 busy, 503
// draining/degraded) are always retryable, while transport errors and 5xx
// responses are retried only for requests that are safe to repeat
// (registrations are idempotent-or-conflict by server contract, queries
// are read-only; session creation is not).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Config tunes a Client; zero values take the documented defaults.
type Config struct {
	// Base is the server address: "host:port" or a full "http://..." URL.
	Base string
	// Tenant is sent as X-Tenant on every request ("" = server default).
	Tenant string
	// HTTP is the underlying client. Default: http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts bounds tries per request (first try + retries).
	// Default 5; 1 disables retrying.
	MaxAttempts int
	// BaseBackoff is the first retry delay, doubled per attempt. Default
	// 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the delay between attempts (and a server Retry-After
	// is clamped to it, so smoke runs against a draining server fail fast
	// rather than sleeping out the hint). Default 2s.
	MaxBackoff time.Duration
	// Seed makes the backoff jitter deterministic. Default 1.
	Seed int64
}

// Client is a gsmd API client. Safe for concurrent use.
type Client struct {
	cfg  Config
	base string

	mu  sync.Mutex
	rng *rand.Rand

	retries    atomic.Uint64
	transport  atomic.Uint64
	httpErrors atomic.Uint64
}

// New builds a client from cfg.
func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	base := cfg.Base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		cfg:  cfg,
		base: strings.TrimRight(base, "/"),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Retries reports how many retry attempts the client has sent (not
// counting first tries).
func (c *Client) Retries() uint64 { return c.retries.Load() }

// TransportErrors reports how many attempts failed below HTTP (dial,
// reset, EOF).
func (c *Client) TransportErrors() uint64 { return c.transport.Load() }

// HTTPErrors reports how many attempts returned a non-2xx status.
func (c *Client) HTTPErrors() uint64 { return c.httpErrors.Load() }

// APIError is a non-2xx response decoded from the server's error body.
type APIError struct {
	Status int    // HTTP status code
	Kind   string // stable machine-readable kind ("overloaded", "degraded", ...)
	Msg    string // human-readable message

	retryAfter time.Duration // parsed Retry-After hint, 0 if absent
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server error %d (%s): %s", e.Status, e.Kind, e.Msg)
}

// IsStatus reports whether err is an APIError with the given status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// IsKind reports whether err is an APIError with the given kind.
func IsKind(err error, kind string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Kind == kind
}

// retryable classifies one failed attempt. Pre-work refusals (429, 503)
// are safe for everyone; other 5xx and transport-level failures only for
// idempotent requests.
func retryable(err error, idem bool) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return true
		default:
			return idem && ae.Status >= 500
		}
	}
	// Transport error: the request may or may not have executed.
	return idem
}

// backoff computes the sleep before the given retry attempt (0-based),
// honoring the server's Retry-After when present: capped exponential with
// ±50% seeded jitter. Doubling stops at MaxBackoff rather than shifting by
// the raw attempt count, which for high MaxAttempts would overflow
// time.Duration to negative and turn the sleep into a busy spin.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseBackoff
	for i := 0; i < attempt && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// do runs one API call with the retry policy. body nil means no request
// body; out nil discards the response body.
func (c *Client) do(ctx context.Context, method, path string, body, out any, idem bool) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("encoding %s %s body: %w", method, path, err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			var ra time.Duration
			var ae *APIError
			if errors.As(lastErr, &ae) {
				ra = ae.retryAfter
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("%s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
			case <-time.After(c.backoff(attempt-1, ra)):
			}
		}
		lastErr = c.attempt(ctx, method, path, payload, out)
		if lastErr == nil {
			return nil
		}
		if !retryable(lastErr, idem) {
			break
		}
	}
	return fmt.Errorf("%s %s: %w", method, path, lastErr)
}

// attempt sends the request once and decodes the response.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.cfg.Tenant != "" {
		req.Header.Set("X-Tenant", c.cfg.Tenant)
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		c.transport.Add(1)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		c.httpErrors.Add(1)
		ae := &APIError{Status: resp.StatusCode, Kind: "unknown"}
		var eb server.ErrorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			ae.Kind, ae.Msg = eb.Kind, eb.Error
		}
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
			ae.retryAfter = time.Duration(sec) * time.Second
		}
		return ae
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// RegisterMapping registers (idempotently) a mapping text under name.
func (c *Client) RegisterMapping(ctx context.Context, name, text string) (server.MappingInfo, error) {
	var info server.MappingInfo
	err := c.do(ctx, http.MethodPost, "/v1/mappings",
		server.RegisterMappingRequest{Name: name, Text: text}, &info, true)
	return info, err
}

// RegisterGraph registers (idempotently) a graph text under name.
func (c *Client) RegisterGraph(ctx context.Context, name, text string) (server.GraphInfo, error) {
	var info server.GraphInfo
	err := c.do(ctx, http.MethodPost, "/v1/graphs",
		server.RegisterGraphRequest{Name: name, Text: text}, &info, true)
	return info, err
}

// CreateSession opens a session. NOT idempotent: a transport failure after
// the server processed the request would leak a session, so only pre-work
// refusals (429/503) are retried.
func (c *Client) CreateSession(ctx context.Context, req server.CreateSessionRequest) (server.SessionInfo, error) {
	var info server.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info, false)
	return info, err
}

// CloseSession closes a session; a 404 (victory by earlier attempt or
// expiry) is reported as-is, callers usually ignore it.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil, true)
}

// Query runs a certain-answer query on a session (read-only, idempotent).
func (c *Client) Query(ctx context.Context, sessionID string, req server.QueryRequest) (server.QueryResponse, error) {
	var resp server.QueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/query", req, &resp, true)
	return resp, err
}

// Prepare registers a prepared query on a session.
func (c *Client) Prepare(ctx context.Context, sessionID string, req server.PrepareRequest) (server.PrepareResponse, error) {
	var resp server.PrepareResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/prepare", req, &resp, true)
	return resp, err
}

// OneShot runs a throwaway-session query (read-only, idempotent).
func (c *Client) OneShot(ctx context.Context, req server.OneShotRequest) (server.QueryResponse, error) {
	var resp server.QueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/query", req, &resp, true)
	return resp, err
}

// Stats fetches /v1/stats.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var resp server.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp, true)
	return resp, err
}

// ArmFaults installs (or, with an empty spec, clears) a fault plan on a
// server running with fault injection enabled.
func (c *Client) ArmFaults(ctx context.Context, spec string, seed int64) (server.FaultsResponse, error) {
	var resp server.FaultsResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/faults",
		server.FaultsRequest{Spec: spec, Seed: seed}, &resp, true)
	return resp, err
}

// Checkpoint folds the server's WAL into a fresh registry snapshot.
func (c *Client) Checkpoint(ctx context.Context) (server.CheckpointResponse, error) {
	var resp server.CheckpointResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/checkpoint", nil, &resp, true)
	return resp, err
}
