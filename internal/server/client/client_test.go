package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// fastCfg keeps retry sleeps in the microsecond range so tests stay quick.
func fastCfg(base string) Config {
	return Config{
		Base:        base,
		MaxAttempts: 4,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Seed:        7,
	}
}

// flaky returns a handler that fails the first n requests with status and
// then succeeds with the given JSON body.
func flaky(n int32, status int, retryAfter string, okBody any) (http.HandlerFunc, *atomic.Int32) {
	var calls atomic.Int32
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(server.ErrorBody{Error: "injected", Kind: "busy"})
			return
		}
		json.NewEncoder(w).Encode(okBody)
	}, &calls
}

func TestRetriesBusyThenSucceeds(t *testing.T) {
	h, calls := flaky(2, http.StatusTooManyRequests, "", server.MappingInfo{Name: "m", Rules: 3})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	info, err := c.RegisterMapping(context.Background(), "m", "x -> y")
	if err != nil {
		t.Fatalf("RegisterMapping: %v", err)
	}
	if info.Rules != 3 || calls.Load() != 3 || c.Retries() != 2 {
		t.Fatalf("info %+v, calls %d, retries %d; want 3 rules after 3 calls, 2 retries",
			info, calls.Load(), c.Retries())
	}
}

func TestRetryAfterHonoredButCapped(t *testing.T) {
	// The server demands a 30s pause; MaxBackoff clamps it so the retry
	// still happens quickly — assert by wall clock.
	h, calls := flaky(1, http.StatusServiceUnavailable, "30", server.StatsResponse{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	start := time.Now()
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Retry-After not capped: took %s", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

func TestBackoffHighAttemptStaysCapped(t *testing.T) {
	// A raw BaseBackoff << attempt overflows time.Duration to negative
	// around attempt 35, skipping the MaxBackoff clamp and turning every
	// retry into a zero-sleep spin. Doubling must saturate at MaxBackoff
	// for arbitrarily high attempt counts.
	cfg := Config{
		Base:        "http://unused",
		MaxAttempts: 100,
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Seed:        7,
	}
	c := New(cfg)
	for _, attempt := range []int{0, 1, 10, 35, 63, 99} {
		d := c.backoff(attempt, 0)
		if d <= 0 {
			t.Fatalf("backoff(%d) = %s, want positive", attempt, d)
		}
		// Jitter multiplies by at most 1.5.
		if max := time.Duration(float64(cfg.MaxBackoff) * 1.5); d > max {
			t.Fatalf("backoff(%d) = %s, want <= %s", attempt, d, max)
		}
	}
}

func TestNonIdempotent500NotRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(server.ErrorBody{Error: "boom", Kind: "internal"})
	}))
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	_, err := c.CreateSession(context.Background(), server.CreateSessionRequest{Mapping: "m", Graph: "g"})
	if err == nil {
		t.Fatal("CreateSession unexpectedly succeeded")
	}
	if !IsStatus(err, http.StatusInternalServerError) || !IsKind(err, "internal") {
		t.Fatalf("error classification: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("non-idempotent 500 retried: %d calls", calls.Load())
	}
}

func TestNonIdempotentBusyIsRetried(t *testing.T) {
	// 429/503 precede any server-side work, so even session creation may
	// retry them.
	h, calls := flaky(1, http.StatusServiceUnavailable, "1", server.SessionInfo{ID: "s-1"})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	si, err := c.CreateSession(context.Background(), server.CreateSessionRequest{Mapping: "m", Graph: "g"})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if si.ID != "s-1" || calls.Load() != 2 {
		t.Fatalf("si %+v after %d calls, want s-1 after 2", si, calls.Load())
	}
}

func TestIdempotent500Retried(t *testing.T) {
	h, calls := flaky(1, http.StatusInternalServerError, "", server.QueryResponse{Count: 4})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	qr, err := c.Query(context.Background(), "s-1", server.QueryRequest{Query: "q"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if qr.Count != 4 || calls.Load() != 2 {
		t.Fatalf("count %d after %d calls, want 4 after 2", qr.Count, calls.Load())
	}
}

func TestAttemptsExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorBody{Error: "busy", Kind: "busy"})
	}))
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	_, err := c.Stats(context.Background())
	if err == nil {
		t.Fatal("Stats unexpectedly succeeded")
	}
	if !IsStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("error: %v", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("calls = %d, want MaxAttempts = 4", calls.Load())
	}
}

func TestTransportErrorRetriedOnlyWhenIdempotent(t *testing.T) {
	// A closed port: every attempt is a transport error.
	ts := httptest.NewServer(http.NotFoundHandler())
	addr := ts.URL
	ts.Close()

	c := New(fastCfg(addr))
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("Stats against a dead server succeeded")
	}
	if got := c.TransportErrors(); got != 4 {
		t.Fatalf("idempotent transport errors = %d, want 4 attempts", got)
	}

	c2 := New(fastCfg(addr))
	if _, err := c2.CreateSession(context.Background(), server.CreateSessionRequest{}); err == nil {
		t.Fatal("CreateSession against a dead server succeeded")
	}
	if got := c2.TransportErrors(); got != 1 {
		t.Fatalf("non-idempotent transport errors = %d, want 1 attempt", got)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	h, _ := flaky(100, http.StatusServiceUnavailable, "1", server.StatsResponse{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cfg := fastCfg(ts.URL)
	cfg.MaxBackoff = time.Second
	c := New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("Stats unexpectedly succeeded")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation not honored during backoff: %s", elapsed)
	}
}
