package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// doRec runs one request through the handler and returns the raw recorder,
// for tests that need headers (Retry-After) as well as the body.
func doRec(t testing.TB, h http.Handler, method, path, tenant string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = httptest.NewRequest(method, path, bytes.NewReader(b))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	if tenant != "" {
		r.Header.Set("X-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// tenantStats pulls one tenant's counters out of the governor snapshot.
func tenantStats(t testing.TB, s *Server, name string) TenantStats {
	t.Helper()
	_, _, tenants := s.gov.snapshot()
	for _, ts := range tenants {
		if ts.Tenant == name {
			return ts
		}
	}
	return TenantStats{Tenant: name}
}

// TestTenantFairness floods the server from a greedy tenant while a polite
// tenant issues sequential requests, and verifies the deficit-weighted
// round robin isolates the polite tenant: every polite request succeeds
// with bounded latency, only the greedy tenant is shed. Run with -race.
func TestTenantFairness(t *testing.T) {
	s, sc := newTestServer(t, Config{MaxInFlight: 2, MaxQueueDepth: 4})
	// Stretch every request so admission actually contends.
	s.testHookStarted = func(r *http.Request) { time.Sleep(2 * time.Millisecond) }
	h := s.Handler()

	var greedySess, politeSess SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "greedy", CreateSessionRequest{Mapping: "m", Graph: "g"}, &greedySess); code != 200 {
		t.Fatalf("create greedy session: status %d", code)
	}
	if code := do(t, h, "POST", "/v1/sessions", "polite", CreateSessionRequest{Mapping: "m", Graph: "g"}, &politeSess); code != 200 {
		t.Fatalf("create polite session: status %d", code)
	}
	q := QueryRequest{Query: sc.QueryTexts[0]}

	// Greedy: 8 concurrent workers, far over capacity (2) plus its queue
	// bound (4), so some of its requests must be shed.
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	var greedyOK, greedyShed atomic.Uint64
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				w := doRec(t, h, "POST", "/v1/sessions/"+greedySess.ID+"/query", "greedy", q)
				switch w.Code {
				case 200:
					greedyOK.Add(1)
				case 503:
					greedyShed.Add(1)
				default:
					t.Errorf("greedy query: unexpected status %d: %s", w.Code, w.Body.String())
				}
			}
		}()
	}

	// Polite: strictly sequential, never more than one queued request, so
	// the governor must admit every one — and quickly, because round robin
	// hands it a slot each scheduling pass regardless of greedy's backlog.
	const politeN = 20
	for i := 0; i < politeN; i++ {
		begin := time.Now()
		w := doRec(t, h, "POST", "/v1/sessions/"+politeSess.ID+"/query", "polite", q)
		if w.Code != 200 {
			t.Fatalf("polite query %d under flood: status %d: %s", i, w.Code, w.Body.String())
		}
		if d := time.Since(begin); d > 5*time.Second {
			t.Fatalf("polite query %d took %s under flood; fairness is broken", i, d)
		}
	}
	wg.Wait()
	s.WaitIdle()

	gs, ps := tenantStats(t, s, "greedy"), tenantStats(t, s, "polite")
	if ps.Shed != 0 || ps.Admitted < politeN {
		t.Errorf("polite tenant: admitted %d shed %d, want >= %d admitted and 0 shed", ps.Admitted, ps.Shed, politeN)
	}
	if greedyShed.Load() == 0 || gs.Shed != greedyShed.Load() {
		t.Errorf("greedy tenant: observed %d sheds, stats say %d; want > 0 and equal", greedyShed.Load(), gs.Shed)
	}
	if greedyOK.Load() == 0 {
		t.Error("greedy tenant made no progress at all; shedding should bound, not starve")
	}
}

// TestRetryAfterScalesWithLoad verifies the adaptive backoff hint: shed
// responses carry a Retry-After derived from the actual queue state, so the
// hint grows as the queue deepens.
func TestRetryAfterScalesWithLoad(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueueDepth: 2})
	// Seed the service-time estimate: 2s per request, capacity 1.
	s.gov.observe(2 * time.Second)

	block := make(chan struct{})
	parked := make(chan struct{}, 1)
	s.testHookStarted = func(r *http.Request) {
		if r.Header.Get("X-Tenant") == "parker" {
			parked <- struct{}{}
			<-block
		}
	}
	h := s.Handler()

	var wg sync.WaitGroup
	enqueue := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			doRec(t, h, "GET", "/v1/stats", tenant, nil)
		}()
	}
	waitQueued := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, queued, _ := s.gov.snapshot(); queued == n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("governor never reached %d queued waiters", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	shedHint := func() int {
		t.Helper()
		w := doRec(t, h, "GET", "/v1/stats", "x", nil)
		if w.Code != 503 {
			t.Fatalf("over-queue request: status %d, want 503", w.Code)
		}
		var eb ErrorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Kind != "overloaded" {
			t.Fatalf("over-queue request: kind %q (err %v), want overloaded", eb.Kind, err)
		}
		sec, err := strconv.Atoi(w.Header().Get("Retry-After"))
		if err != nil || sec < 1 {
			t.Fatalf("Retry-After %q: %v, want integer >= 1", w.Header().Get("Retry-After"), err)
		}
		return sec
	}

	// Occupy the single slot, then fill tenant x's queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		doRec(t, h, "GET", "/v1/stats", "parker", nil)
	}()
	<-parked
	enqueue("x")
	enqueue("x")
	waitQueued(2)
	light := shedHint() // 2 queued ahead → est (2+1)·2s/1

	// Deepen the global queue from another tenant; x's next shed must see
	// a larger drain estimate.
	enqueue("y")
	enqueue("y")
	waitQueued(4)
	heavy := shedHint() // 4 queued ahead → est (4+1)·2s/1

	if heavy <= light {
		t.Errorf("Retry-After did not scale with queue depth: light=%ds heavy=%ds", light, heavy)
	}
	close(block)
	wg.Wait()
	s.WaitIdle()
}

// TestTenantRateLimit verifies the token bucket: a tenant over its rate is
// refused 429 rate_limited with the refill time as Retry-After, before it
// can occupy a slot or queue entry, and other tenants are unaffected.
func TestTenantRateLimit(t *testing.T) {
	s, _ := newTestServer(t, Config{TenantRPS: 0.2, TenantBurst: 1})
	h := s.Handler()

	if w := doRec(t, h, "GET", "/v1/stats", "alice", nil); w.Code != 200 {
		t.Fatalf("first request within burst: status %d", w.Code)
	}
	w := doRec(t, h, "GET", "/v1/stats", "alice", nil)
	if w.Code != 429 {
		t.Fatalf("second request over rate: status %d, want 429", w.Code)
	}
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Kind != "rate_limited" {
		t.Fatalf("over-rate kind %q (err %v), want rate_limited", eb.Kind, err)
	}
	if sec, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || sec < 1 {
		t.Fatalf("over-rate Retry-After %q, want >= 1s refill hint", w.Header().Get("Retry-After"))
	}
	// Buckets are per tenant: bob is not affected by alice's flood.
	if w := doRec(t, h, "GET", "/v1/stats", "bob", nil); w.Code != 200 {
		t.Fatalf("other tenant: status %d, want 200", w.Code)
	}
	if ts := tenantStats(t, s, "alice"); ts.RateLimited != 1 {
		t.Errorf("alice rate_limited counter = %d, want 1", ts.RateLimited)
	}
	s.WaitIdle()
}

// TestEvictionRematerializes verifies the memory governor end to end: with
// a budget too small to retain anything, an idle backend is LRU-evicted on
// last close, a new backend for a fresh pair is refused 503 overloaded
// while resident non-idle backends exceed the budget, and a re-created
// backend lazily re-materializes to byte-for-byte identical answers.
func TestEvictionRematerializes(t *testing.T) {
	s, sc := newTestServer(t, Config{MemBudgetBytes: 1})
	h := s.Handler()
	// A second, distinct graph so a second backend can be requested.
	if _, err := s.RegisterGraphText("g2", "node a 1\nnode b 2\nedge a p b\n"); err != nil {
		t.Fatalf("register g2: %v", err)
	}

	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "alice", CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != 200 {
		t.Fatalf("create session: status %d", code)
	}
	// First pass: record every query's canonical answer bytes.
	before := make([][]byte, len(sc.QueryTexts))
	for i, text := range sc.QueryTexts {
		var qr QueryResponse
		if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "alice", QueryRequest{Query: text}, &qr); code != 200 {
			t.Fatalf("query %d: status %d", i, code)
		}
		b, err := json.Marshal(qr.Answers)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = b
	}

	// While the backend is live (refcount 1) it cannot be evicted, so a
	// new pair must be refused: the budget cannot be met.
	w := doRec(t, h, "POST", "/v1/sessions", "alice", CreateSessionRequest{Mapping: "m", Graph: "g2"})
	if w.Code != 503 {
		t.Fatalf("new pair over budget: status %d, want 503", w.Code)
	}
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Kind != "overloaded" {
		t.Fatalf("new pair over budget: kind %q (err %v), want overloaded", eb.Kind, err)
	}

	// Last close: the backend goes idle and the budget (1 byte) evicts it.
	if code := do(t, h, "DELETE", "/v1/sessions/"+si.ID, "alice", nil, nil); code != 200 {
		t.Fatalf("close session: status %d", code)
	}
	var st StatsResponse
	if code := do(t, h, "GET", "/v1/stats", "alice", nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.Evictions == 0 {
		t.Fatalf("evictions = 0 after last close over budget, want > 0")
	}
	if st.IdleBackends != 0 || st.ResidentBytes != 0 {
		t.Fatalf("after eviction: %d idle backends, %d resident bytes, want 0/0", st.IdleBackends, st.ResidentBytes)
	}

	// Re-open the evicted pair: the backend re-materializes lazily and
	// every answer must be byte-for-byte what it was before eviction.
	if code := do(t, h, "POST", "/v1/sessions", "alice", CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != 200 {
		t.Fatalf("re-create session after eviction: status %d", code)
	}
	for i, text := range sc.QueryTexts {
		var qr QueryResponse
		if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "alice", QueryRequest{Query: text}, &qr); code != 200 {
			t.Fatalf("re-query %d: status %d", i, code)
		}
		b, err := json.Marshal(qr.Answers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before[i], b) {
			t.Errorf("query %d answers changed across eviction:\n before: %s\n after:  %s", i, before[i], b)
		}
	}
	s.WaitIdle()
}

// TestGovernFaultPoints verifies the chaos hooks: an injected error at
// govern.admit sheds exactly the next request, and an injected error at
// govern.evict stops eviction (degrading to an over-budget cache, never a
// crash) while leaving serving intact.
func TestGovernFaultPoints(t *testing.T) {
	s, _ := newTestServer(t, Config{MemBudgetBytes: 1})
	h := s.Handler()
	defer fault.Arm("", 0)

	if err := fault.Arm("govern.admit=error:n=1", 1); err != nil {
		t.Fatalf("arming govern.admit: %v", err)
	}
	if w := doRec(t, h, "GET", "/v1/stats", "alice", nil); w.Code/100 == 2 {
		t.Fatalf("request with govern.admit armed: status %d, want an error", w.Code)
	}
	if w := doRec(t, h, "GET", "/v1/stats", "alice", nil); w.Code != 200 {
		t.Fatalf("request after one-shot fault: status %d, want 200", w.Code)
	}

	// Eviction fault: the last close would evict, the injected error makes
	// the governor keep the backend instead.
	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "alice", CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != 200 {
		t.Fatalf("create session: status %d", code)
	}
	if err := fault.Arm("govern.evict=error:n=1", 1); err != nil {
		t.Fatalf("arming govern.evict: %v", err)
	}
	if code := do(t, h, "DELETE", "/v1/sessions/"+si.ID, "alice", nil, nil); code != 200 {
		t.Fatalf("close session with govern.evict armed: status %d", code)
	}
	var st StatsResponse
	if code := do(t, h, "GET", "/v1/stats", "alice", nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.IdleBackends != 1 {
		t.Fatalf("idle backends = %d after failed eviction, want 1 (kept, not crashed)", st.IdleBackends)
	}
	s.WaitIdle()
}
