package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/workload"
)

// registryImage is a comparable snapshot of a server's registry contents,
// used to assert byte-for-byte recovery.
type registryImage struct {
	Mappings map[string]string
	Graphs   map[string]string
}

func imageOf(s *Server) registryImage {
	s.mu.RLock()
	defer s.mu.RUnlock()
	img := registryImage{Mappings: map[string]string{}, Graphs: map[string]string{}}
	for name, e := range s.mappings {
		img.Mappings[name] = e.text
	}
	for name, e := range s.graphs {
		img.Graphs[name] = e.text
	}
	return img
}

func (a registryImage) equal(b registryImage) bool {
	if len(a.Mappings) != len(b.Mappings) || len(a.Graphs) != len(b.Graphs) {
		return false
	}
	for k, v := range a.Mappings {
		if b.Mappings[k] != v {
			return false
		}
	}
	for k, v := range a.Graphs {
		if b.Graphs[k] != v {
			return false
		}
	}
	return true
}

// queryBytes runs one session query through the handler and returns the
// canonical answer bytes.
func queryBytes(t *testing.T, s *Server, mapping, graph, query string) []byte {
	t.Helper()
	h := s.Handler()
	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "",
		CreateSessionRequest{Mapping: mapping, Graph: graph}, &si); code != http.StatusOK {
		t.Fatalf("create session: status %d", code)
	}
	var qr QueryResponse
	if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "",
		QueryRequest{Query: query}, &qr); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	b, err := json.Marshal(qr.Answers)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newAnsweringServer registers the canonical (default-spec) serving
// scenario, whose query stream returns real answers — the small
// testScenario's queries are all empty, useless for stream-interruption
// tests.
func newAnsweringServer(t testing.TB, cfg Config) (*Server, workload.ServingScenario) {
	t.Helper()
	sc := workload.Serving(workload.ServingSpec{})
	s := New(cfg)
	if _, err := s.RegisterMappingText("m", sc.MappingText); err != nil {
		t.Fatalf("register mapping: %v", err)
	}
	if _, err := s.RegisterGraphText("g", sc.GraphText); err != nil {
		t.Fatalf("register graph: %v", err)
	}
	return s, sc
}

// answeringQuery finds the first scenario query with a non-empty answer
// set (some streams in the canonical scenario are legitimately empty) and
// returns its text with its batch response.
func answeringQuery(t *testing.T, h http.Handler, tenant, sessionID string, texts []string) (string, QueryResponse) {
	t.Helper()
	for _, q := range texts {
		var qr QueryResponse
		if code := do(t, h, "POST", "/v1/sessions/"+sessionID+"/query", tenant,
			QueryRequest{Query: q}, &qr); code != http.StatusOK {
			t.Fatalf("batch query: status %d", code)
		}
		if qr.Count > 0 {
			return q, qr
		}
	}
	t.Fatal("no scenario query returns answers")
	return "", QueryResponse{}
}

// TestPersistRoundtrip is the plain crash-free cycle: register, delete,
// close, reopen — the reopened server must hold the identical registry and
// produce identical answers.
func TestPersistRoundtrip(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(t)

	a := New(Config{})
	if _, err := a.OpenState(dir); err != nil {
		t.Fatalf("OpenState: %v", err)
	}
	if _, err := a.RegisterMappingText("m", sc.MappingText); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RegisterGraphText("g", sc.GraphText); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RegisterGraphText("doomed", sc.GraphText); err != nil {
		t.Fatal(err)
	}
	if _, err := a.DeleteGraph("doomed"); err != nil {
		t.Fatalf("DeleteGraph: %v", err)
	}
	want := imageOf(a)
	wantAns := queryBytes(t, a, "m", "g", sc.QueryTexts[0])
	if err := a.CloseState(); err != nil {
		t.Fatalf("CloseState: %v", err)
	}

	b := New(Config{})
	rec, err := b.OpenState(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec.Mappings != 1 || rec.Graphs != 1 {
		t.Fatalf("recovered %d mappings, %d graphs, want 1/1", rec.Mappings, rec.Graphs)
	}
	if rec.QuarantinedWAL || rec.QuarantinedSnap {
		t.Fatalf("clean shutdown flagged corruption: %+v", rec)
	}
	if got := imageOf(b); !got.equal(want) {
		t.Fatalf("recovered registry differs:\ngot  %+v\nwant %+v", got, want)
	}
	if gotAns := queryBytes(t, b, "m", "g", sc.QueryTexts[0]); !bytes.Equal(gotAns, wantAns) {
		t.Fatalf("recovered answers differ:\ngot  %s\nwant %s", gotAns, wantAns)
	}
}

// TestCrashRecoveryTornWAL is the crash drill from the issue: a fault
// point tears a WAL append mid-write (simulating a crash), the wedged log
// refuses further appends, and a fresh server recovering the directory
// quarantines the torn tail and rebuilds exactly the acknowledged registry
// — same names, same texts, same answers.
func TestCrashRecoveryTornWAL(t *testing.T) {
	t.Cleanup(fault.Disarm)
	dir := t.TempDir()
	sc := testScenario(t)

	a := New(Config{})
	if _, err := a.OpenState(dir); err != nil {
		t.Fatalf("OpenState: %v", err)
	}
	if _, err := a.RegisterMappingText("m", sc.MappingText); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := a.RegisterGraphText(fmt.Sprintf("g%d", i), sc.GraphText); err != nil {
			t.Fatal(err)
		}
	}
	want := imageOf(a)
	wantAns := queryBytes(t, a, "m", "g0", sc.QueryTexts[1])

	// Tear the next append partway through the frame.
	if err := fault.Arm("wal.append=partial:n=1", 42); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RegisterGraphText("torn", sc.GraphText); err == nil {
		t.Fatal("registration over a torn WAL append unexpectedly succeeded")
	}
	if img := imageOf(a); !img.equal(want) {
		t.Fatalf("failed registration mutated the in-memory registry: %+v", img)
	}
	// The log is wedged: even a clean registration must be refused rather
	// than buried behind torn bytes.
	fault.Disarm()
	if _, err := a.RegisterGraphText("after-tear", sc.GraphText); err == nil {
		t.Fatal("append to a wedged WAL unexpectedly succeeded")
	}
	// Crash: abandon a without CloseState (the file stays as the torn
	// write left it; a fresh OS handle is opened by recovery).

	b := New(Config{})
	rec, err := b.OpenState(dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if !rec.QuarantinedWAL {
		t.Fatalf("torn tail not quarantined: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "registry.wal.quarantine")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if got := imageOf(b); !got.equal(want) {
		t.Fatalf("recovered registry differs:\ngot  %+v\nwant %+v", got, want)
	}
	if gotAns := queryBytes(t, b, "m", "g0", sc.QueryTexts[1]); !bytes.Equal(gotAns, wantAns) {
		t.Fatalf("recovered answers differ:\ngot  %s\nwant %s", gotAns, wantAns)
	}
	// The recovered server's truncated WAL accepts appends again.
	if _, err := b.RegisterGraphText("post-crash", sc.GraphText); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestCheckpointRepairsWedgedWAL: a checkpoint folds the registry into a
// fresh snapshot, truncates the WAL and un-wedges a log left broken by a
// torn append — the documented online repair.
func TestCheckpointRepairsWedgedWAL(t *testing.T) {
	t.Cleanup(fault.Disarm)
	dir := t.TempDir()
	sc := testScenario(t)

	s := New(Config{})
	if _, err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterMappingText("m", sc.MappingText); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("wal.append=partial:n=1", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterGraphText("g", sc.GraphText); err == nil {
		t.Fatal("torn append unexpectedly succeeded")
	}
	fault.Disarm()

	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if cp.Mappings != 1 || cp.Graphs != 0 {
		t.Fatalf("checkpoint covered %d/%d, want 1/0", cp.Mappings, cp.Graphs)
	}
	if _, err := s.RegisterGraphText("g", sc.GraphText); err != nil {
		t.Fatalf("append after checkpoint repair: %v", err)
	}
	want := imageOf(s)
	if err := s.CloseState(); err != nil {
		t.Fatal(err)
	}

	b := New(Config{})
	rec, err := b.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.QuarantinedWAL {
		t.Fatalf("checkpointed state still flagged a torn WAL: %+v", rec)
	}
	if got := imageOf(b); !got.equal(want) {
		t.Fatalf("recovered registry differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestPanicIsolation: tenant B's injected handler panic must return a 500
// to B only — tenant A's stream, in flight across the panic, completes
// with every answer and the done marker intact.
func TestPanicIsolation(t *testing.T) {
	t.Cleanup(fault.Disarm)
	s, sc := newAnsweringServer(t, Config{})
	h := s.Handler()

	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "tenant-a",
		CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != http.StatusOK {
		t.Fatalf("create session: status %d", code)
	}
	// Batch answers for the stream to be checked against; the stream must
	// carry real answers or the mid-flight window is empty.
	query, qr := answeringQuery(t, h, "tenant-a", si.ID, sc.QueryTexts)

	// Hold tenant A's stream request at entry so it is provably in flight
	// while tenant B panics.
	streamEntered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookStarted = func(r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			once.Do(func() { close(streamEntered) })
			<-release
		}
	}

	streamDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		b, _ := json.Marshal(QueryRequest{Query: query})
		r := httptest.NewRequest("POST", "/v1/sessions/"+si.ID+"/stream", bytes.NewReader(b))
		r.Header.Set("X-Tenant", "tenant-a")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		streamDone <- w
	}()
	<-streamEntered

	// Tenant B panics at handler entry; the budget of one means nobody
	// else can hit it.
	if err := fault.Arm("server.handler=panic:n=1", 1); err != nil {
		t.Fatal(err)
	}
	code, kind := errKind(t, h, "POST", "/v1/query", "tenant-b",
		OneShotRequest{Mapping: "m", Graph: "g", Query: sc.QueryTexts[0]})
	if code != http.StatusInternalServerError || kind != "panic" {
		t.Fatalf("panicking request: status %d kind %q, want 500 panic", code, kind)
	}
	if got := s.stats.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// Release A; the stream must be whole.
	close(release)
	w := <-streamDone
	if w.Code != http.StatusOK {
		t.Fatalf("stream status %d", w.Code)
	}
	var streamed []Answer
	done := false
	scanner := bufio.NewScanner(w.Body)
	for scanner.Scan() {
		var chunk StreamChunk
		if err := json.Unmarshal(scanner.Bytes(), &chunk); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		switch {
		case chunk.Error != "":
			t.Fatalf("in-band stream error: %s (%s)", chunk.Error, chunk.Kind)
		case chunk.Done:
			done = true
			if chunk.Count != qr.Count {
				t.Fatalf("stream count %d != batch count %d", chunk.Count, qr.Count)
			}
		default:
			streamed = append(streamed, *chunk.Answer)
		}
	}
	if !done {
		t.Fatal("stream has no done marker")
	}
	// Streamed order is evaluation order; compare as canonical multisets.
	key := func(a Answer) string { return a.From.ID + "|" + a.To.ID }
	got := make(map[string]int)
	for _, a := range streamed {
		got[key(a)]++
	}
	want := make(map[string]int)
	for _, a := range qr.Answers {
		want[key(a)]++
	}
	if len(got) != len(want) {
		t.Fatalf("stream has %d distinct answers, batch has %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("streamed answers differ from batch at %s: %d != %d", k, got[k], n)
		}
	}

	// And tenant B is fine on the next request.
	var qr2 QueryResponse
	if code := do(t, h, "POST", "/v1/query", "tenant-b",
		OneShotRequest{Mapping: "m", Graph: "g", Query: sc.QueryTexts[0]}, &qr2); code != http.StatusOK {
		t.Fatalf("tenant-b after panic: status %d", code)
	}
}

// TestStreamEmitsTerminalErrorRecordOnPanic: a panic mid-stream — after
// the 200 header is committed — must surface as a terminal NDJSON error
// record, not a silent truncation.
func TestStreamEmitsTerminalErrorRecordOnPanic(t *testing.T) {
	t.Cleanup(fault.Disarm)
	s, sc := newAnsweringServer(t, Config{})
	h := s.Handler()

	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "",
		CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != http.StatusOK {
		t.Fatalf("create session: status %d", code)
	}
	query, _ := answeringQuery(t, h, "", si.ID, sc.QueryTexts)
	if err := fault.Arm("server.stream=panic:n=1", 1); err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(QueryRequest{Query: query})
	r := httptest.NewRequest("POST", "/v1/sessions/"+si.ID+"/stream", bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status %d (header should be committed before the panic)", w.Code)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	var last StreamChunk
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("bad terminal line %q: %v", lines[len(lines)-1], err)
	}
	if last.Kind != "panic" || last.Error == "" || last.Done {
		t.Fatalf("terminal record = %+v, want an error record of kind panic", last)
	}
}

// TestBreakerOpensAndRecovers drives a backend through the full circuit:
// consecutive materialization failures open it, requests during cooldown
// are shed with 503 degraded + Retry-After, and a successful half-open
// probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	t.Cleanup(fault.Disarm)
	s, sc := newTestServer(t, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  80 * time.Millisecond,
	})
	h := s.Handler()

	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "",
		CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != http.StatusOK {
		t.Fatalf("create session: status %d", code)
	}
	// Two failing materializations (the memo does not cache errors, so
	// each query retries the build and each hits the fault).
	if err := fault.Arm("core.memo=error:n=2", 9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		code, _ := errKind(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "",
			QueryRequest{Query: sc.QueryTexts[0]})
		if code != http.StatusInternalServerError {
			t.Fatalf("failing query %d: status %d, want 500", i, code)
		}
	}

	// Threshold reached: the breaker sheds before touching the backend.
	b, _ := json.Marshal(QueryRequest{Query: sc.QueryTexts[0]})
	r := httptest.NewRequest("POST", "/v1/sessions/"+si.ID+"/query", bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", w.Code)
	}
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Kind != "degraded" {
		t.Fatalf("open breaker: kind %q (err %v), want degraded", eb.Kind, err)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("open breaker: no Retry-After header")
	}

	// After the cooldown the half-open probe runs the real (now healthy —
	// the fault budget is spent) materialization and closes the breaker.
	time.Sleep(100 * time.Millisecond)
	var qr QueryResponse
	if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "",
		QueryRequest{Query: sc.QueryTexts[0]}, &qr); code != http.StatusOK {
		t.Fatalf("half-open probe: status %d, want 200", code)
	}
	if code := do(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "",
		QueryRequest{Query: sc.QueryTexts[0]}, &qr); code != http.StatusOK {
		t.Fatalf("after close: status %d, want 200", code)
	}
}

// TestBreakerClientErrorsAreNeutral exercises the state machine directly:
// a client error (onSkip) carries no verdict on backend health, so it must
// neither feed the failure streak nor reset it, and a half-open probe that
// hits one must release the probe slot without closing the breaker.
func TestBreakerClientErrorsAreNeutral(t *testing.T) {
	var b breaker
	b.init(3, 50*time.Millisecond)

	// Closed: two failures, a client error, a third failure. The streak
	// must survive the interleaved client error and open the breaker.
	b.onFailure()
	b.onFailure()
	b.onSkip()
	b.onFailure()
	if b.status() != "open" {
		t.Fatalf("state after 3 failures with an interleaved client error = %s, want open", b.status())
	}

	// Half-open: the probe hits a client error. The slot is released (the
	// next request becomes the probe) but the breaker must not close.
	time.Sleep(60 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	b.onSkip()
	if b.status() != "half-open" {
		t.Fatalf("state after client-error probe = %s, want half-open", b.status())
	}
	if err := b.allow(); err != nil {
		t.Fatalf("replacement probe refused after skip: %v", err)
	}
	b.onFailure()
	if b.status() != "open" {
		t.Fatalf("state after failed replacement probe = %s, want open", b.status())
	}
}

// TestBreakerProbeClientErrorDoesNotClose drives the runBackend path over
// HTTP: with the breaker half-open, a probe that fails with a client
// mistake (unknown algo, 400) must not close the breaker — a single
// backend failure afterwards re-opens it immediately, instead of the
// backend eating a fresh threshold's worth of traffic.
func TestBreakerProbeClientErrorDoesNotClose(t *testing.T) {
	t.Cleanup(fault.Disarm)
	s, sc := newTestServer(t, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	h := s.Handler()

	var si SessionInfo
	if code := do(t, h, "POST", "/v1/sessions", "",
		CreateSessionRequest{Mapping: "m", Graph: "g"}, &si); code != http.StatusOK {
		t.Fatalf("create session: status %d", code)
	}
	if err := fault.Arm("core.memo=error:n=2", 9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		code, _ := errKind(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "",
			QueryRequest{Query: sc.QueryTexts[0]})
		if code != http.StatusInternalServerError {
			t.Fatalf("failing query %d: status %d, want 500", i, code)
		}
	}

	// Cooldown over; the half-open probe is a client mistake that never
	// exercises the backend.
	time.Sleep(60 * time.Millisecond)
	code, kind := errKind(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "",
		QueryRequest{Query: sc.QueryTexts[0], Algo: "bogus"})
	if code != http.StatusBadRequest {
		t.Fatalf("client-error probe: status %d kind %q, want 400", code, kind)
	}

	// One genuine backend failure must re-open the breaker on its own: if
	// the client error had wrongly closed it, a single failure would be
	// below the threshold and the next request would hit the backend again.
	if err := fault.Arm("core.memo=error:n=1", 9); err != nil {
		t.Fatal(err)
	}
	code, _ = errKind(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "",
		QueryRequest{Query: sc.QueryTexts[0]})
	if code != http.StatusInternalServerError {
		t.Fatalf("failing probe: status %d, want 500", code)
	}
	code, kind = errKind(t, h, "POST", "/v1/sessions/"+si.ID+"/query", "",
		QueryRequest{Query: sc.QueryTexts[0]})
	if code != http.StatusServiceUnavailable || kind != "degraded" {
		t.Fatalf("after failed probe: status %d kind %q, want 503 degraded", code, kind)
	}
}

// TestFaultEndpointGating: /v1/admin/faults must be refused unless the
// server opted in, and must arm/disarm when it did.
func TestFaultEndpointGating(t *testing.T) {
	t.Cleanup(fault.Disarm)
	locked, _ := newTestServer(t, Config{})
	code, kind := errKind(t, locked.Handler(), "POST", "/v1/admin/faults", "",
		FaultsRequest{Spec: "server.handler=error"})
	if code != http.StatusForbidden || kind != "forbidden" {
		t.Fatalf("locked server: status %d kind %q, want 403 forbidden", code, kind)
	}
	if fault.Armed() {
		t.Fatal("locked server armed faults anyway")
	}

	open, _ := newTestServer(t, Config{EnableFaultInjection: true})
	var fr FaultsResponse
	if code := do(t, open.Handler(), "POST", "/v1/admin/faults", "",
		FaultsRequest{Spec: "server.handler=error:n=1", Seed: 3}, &fr); code != http.StatusOK {
		t.Fatalf("arming: status %d", code)
	}
	if !fr.Armed || len(fr.Points) != 1 {
		t.Fatalf("arming response: %+v", fr)
	}
	code, kind = errKind(t, open.Handler(), "GET", "/v1/stats", "", nil)
	if code != http.StatusInternalServerError || kind != "internal" {
		t.Fatalf("armed error point: status %d kind %q, want 500 internal", code, kind)
	}
	if code := do(t, open.Handler(), "POST", "/v1/admin/faults", "",
		FaultsRequest{Spec: ""}, &fr); code != http.StatusOK {
		t.Fatalf("disarming: status %d", code)
	}
	if fr.Armed || fault.Armed() {
		t.Fatal("disarm did not take")
	}
}
