package fault

import (
	"errors"
	"testing"
	"time"
)

// arm is a test helper that arms a spec and disarms at cleanup so tests
// never leak a plan into each other.
func arm(t *testing.T, spec string, seed int64) {
	t.Helper()
	if err := Arm(spec, seed); err != nil {
		t.Fatalf("Arm(%q): %v", spec, err)
	}
	t.Cleanup(Disarm)
}

func TestUnarmedIsNil(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() = true with no plan")
	}
	if err := Hit("anything"); err != nil {
		t.Fatalf("unarmed Hit: %v", err)
	}
	if n, fired := Partial("anything", 100); n != 100 || fired {
		t.Fatalf("unarmed Partial = (%d, %v), want (100, false)", n, fired)
	}
}

func TestErrorMode(t *testing.T) {
	arm(t, "a.b=error", 7)
	err := Hit("a.b")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected wrap", err)
	}
	if err := Hit("other.point"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	arm(t, "boom=panic", 7)
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Point != "boom" {
			t.Fatalf("recovered %v, want PanicValue{boom}", r)
		}
	}()
	Hit("boom")
	t.Fatal("Hit did not panic")
}

func TestLatencyMode(t *testing.T) {
	arm(t, "slow=latency:ms=30", 7)
	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatalf("latency Hit: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency Hit returned after %v, want >= ~30ms", d)
	}
}

func TestFireBudget(t *testing.T) {
	arm(t, "once=error:n=1", 7)
	if err := Hit("once"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first Hit = %v, want injected", err)
	}
	for i := 0; i < 10; i++ {
		if err := Hit("once"); err != nil {
			t.Fatalf("Hit after budget spent = %v, want nil", err)
		}
	}
}

func TestProbabilityDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		arm(t, "p.x=error:p=0.5", seed)
		defer Disarm()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Hit("p.x") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times; want a mix", fires, len(a))
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing patterns")
	}
}

func TestPartialMode(t *testing.T) {
	arm(t, "wal=partial:n=1", 7)
	n, fired := Partial("wal", 100)
	if !fired || n >= 100 || n < 0 {
		t.Fatalf("Partial = (%d, %v), want torn write < 100", n, fired)
	}
	// Budget spent: later writes go through whole.
	if n, fired := Partial("wal", 100); fired || n != 100 {
		t.Fatalf("Partial after budget = (%d, %v), want (100, false)", n, fired)
	}
	// Hit ignores partial points — only Partial draws their budget, so a
	// writer calling Hit then Partial never double-fires.
	arm(t, "wal=partial", 7)
	if err := Hit("wal"); err != nil {
		t.Fatalf("partial Hit = %v, want nil (partial fires only via Partial)", err)
	}
	if n, fired := Partial("wal", 100); !fired || n >= 100 {
		t.Fatalf("Partial after Hit = (%d, %v), want torn write", n, fired)
	}
}

func TestSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"noeq",
		"x=warp",
		"x=error:p=2",
		"x=error:p=0",
		"x=error:n=-1",
		"x=latency:ms=abc",
		"x=error:q=1",
	} {
		if err := Arm(spec, 1); err == nil {
			Disarm()
			t.Errorf("Arm(%q) accepted; want error", spec)
		}
	}
	if Armed() {
		t.Fatal("failed Arm left a plan armed")
	}
}

func TestStatus(t *testing.T) {
	arm(t, "b=error;a=latency:ms=1:n=3", 9)
	Hit("a")
	Hit("b")
	spec, seed, points, ok := Status()
	if !ok || seed != 9 || spec == "" {
		t.Fatalf("Status = (%q, %d, _, %v)", spec, seed, ok)
	}
	if len(points) != 2 || points[0].Name != "a" || points[1].Name != "b" {
		t.Fatalf("points = %+v, want sorted [a b]", points)
	}
	if points[0].Fires != 1 || points[0].Hits != 1 || points[0].Max != 3 {
		t.Fatalf("point a status = %+v", points[0])
	}
	Disarm()
	if _, _, _, ok := Status(); ok {
		t.Fatal("Status ok after Disarm")
	}
}

func TestArmEmptyDisarms(t *testing.T) {
	arm(t, "x=error", 1)
	if err := Arm("", 0); err != nil {
		t.Fatalf("Arm(\"\"): %v", err)
	}
	if Armed() {
		t.Fatal("empty spec left faults armed")
	}
	if err := Hit("x"); err != nil {
		t.Fatalf("Hit after disarm: %v", err)
	}
}
