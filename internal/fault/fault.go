// Package fault provides named, deterministic fault-injection points for
// exercising failure paths in tests, the chaos smoke script and gsmload
// -chaos runs. A point is a call site like
//
//	if err := fault.Hit("server.materialize"); err != nil { return err }
//
// that is a no-op in production: when nothing is armed, Hit costs one
// atomic load and returns nil. Arming installs a plan — a set of points,
// each with a mode (error, panic, latency, partial), a firing probability,
// an optional firing budget and a seeded RNG — so a chaos run is fully
// reproducible from its spec string and seed.
//
// The spec grammar is a ';'-separated list of point clauses:
//
//	point '=' mode [':' param]...
//	mode  := error | panic | latency | partial
//	param := p=<0..1 probability, default 1> | n=<max fires, default ∞>
//	       | ms=<latency milliseconds, default 10>
//
// e.g. "core.chase=error:p=0.2;server.handler=panic:n=1;wal.append=partial".
// Each point draws from its own RNG seeded from the global seed and the
// point name, so arming an extra point never perturbs another point's
// firing sequence.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every error Hit returns; callers
// (and tests) detect injected failures with errors.Is.
var ErrInjected = errors.New("injected fault")

// PanicValue is the value a panic-mode point panics with, so recover
// middleware and tests can tell an injected panic from a genuine bug.
type PanicValue struct{ Point string }

func (p PanicValue) String() string { return "injected panic at fault point " + p.Point }

// Mode is a point's failure mode.
type Mode string

const (
	// ModeError makes Hit return an ErrInjected-wrapping error.
	ModeError Mode = "error"
	// ModePanic makes Hit panic with a PanicValue.
	ModePanic Mode = "panic"
	// ModeLatency makes Hit sleep for the configured duration, then
	// return nil.
	ModeLatency Mode = "latency"
	// ModePartial only affects Partial-aware call sites (WAL appends):
	// Partial reports a truncated byte count and Hit returns an error.
	ModePartial Mode = "partial"
)

// point is one armed injection point.
type point struct {
	name string
	mode Mode
	prob float64       // firing probability per Hit, (0, 1]
	max  int64         // max fires; <0 = unlimited
	lat  time.Duration // ModeLatency sleep

	mu    sync.Mutex
	rng   *rand.Rand
	hits  int64 // times the point was evaluated
	fires int64 // times it actually fired
}

// fire decides — under the point's own seeded RNG — whether this Hit
// fires, consuming one unit of the firing budget when it does.
func (pt *point) fire() bool {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.hits++
	if pt.max >= 0 && pt.fires >= pt.max {
		return false
	}
	if pt.prob < 1 && pt.rng.Float64() >= pt.prob {
		return false
	}
	pt.fires++
	return true
}

// plan is the full armed configuration, swapped atomically so Hit never
// takes a global lock.
type plan struct {
	spec   string
	seed   int64
	points map[string]*point
}

var (
	armed   atomic.Bool
	current atomic.Pointer[plan]
)

// Armed reports whether any fault plan is installed.
func Armed() bool { return armed.Load() }

// Arm installs the plan described by spec, replacing any previous plan.
// An empty spec disarms. The seed makes every firing decision
// deterministic; seed 0 means 1.
func Arm(spec string, seed int64) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disarm()
		return nil
	}
	if seed == 0 {
		seed = 1
	}
	points := make(map[string]*point)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		pt, err := parseClause(clause, seed)
		if err != nil {
			return err
		}
		points[pt.name] = pt
	}
	if len(points) == 0 {
		Disarm()
		return nil
	}
	current.Store(&plan{spec: spec, seed: seed, points: points})
	armed.Store(true)
	return nil
}

// Disarm removes the active plan; every point becomes a no-op again.
func Disarm() {
	armed.Store(false)
	current.Store(nil)
}

// parseClause parses one "point=mode:param:param" clause.
func parseClause(clause string, seed int64) (*point, error) {
	name, rest, ok := strings.Cut(clause, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return nil, fmt.Errorf("fault: clause %q: want point=mode[:param...]", clause)
	}
	parts := strings.Split(rest, ":")
	pt := &point{name: name, prob: 1, max: -1, lat: 10 * time.Millisecond}
	switch Mode(strings.TrimSpace(parts[0])) {
	case ModeError, ModePanic, ModeLatency, ModePartial:
		pt.mode = Mode(strings.TrimSpace(parts[0]))
	default:
		return nil, fmt.Errorf("fault: clause %q: unknown mode %q (want error, panic, latency or partial)",
			clause, parts[0])
	}
	for _, param := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(param), "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q: parameter %q: want key=value", clause, param)
		}
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("fault: clause %q: probability %q: want (0, 1]", clause, val)
			}
			pt.prob = p
		case "n":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: clause %q: fire budget %q: want >= 0", clause, val)
			}
			pt.max = n
		case "ms":
			ms, err := strconv.ParseInt(val, 10, 64)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("fault: clause %q: latency %q: want milliseconds >= 0", clause, val)
			}
			pt.lat = time.Duration(ms) * time.Millisecond
		default:
			return nil, fmt.Errorf("fault: clause %q: unknown parameter %q (want p, n or ms)", clause, key)
		}
	}
	// Seed per point from (seed, name) so points are independent streams.
	h := fnv.New64a()
	h.Write([]byte(name))
	pt.rng = rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	return pt, nil
}

// lookup resolves name against the active plan, nil when inactive.
func lookup(name string) *point {
	if !armed.Load() {
		return nil
	}
	pl := current.Load()
	if pl == nil {
		return nil
	}
	return pl.points[name]
}

// Hit is the injection point. Unarmed (the production state) it returns
// nil after a single atomic load. Armed, it consults the point's plan:
// error mode returns an ErrInjected wrap, panic mode panics with a
// PanicValue, latency mode sleeps. Partial-mode points are ignored by Hit
// — they fire (and spend their budget) only through Partial, so a writer
// calling both never double-draws from the plan.
func Hit(name string) error {
	pt := lookup(name)
	if pt == nil || pt.mode == ModePartial || !pt.fire() {
		return nil
	}
	switch pt.mode {
	case ModeError:
		return fmt.Errorf("%w at %s", ErrInjected, name)
	case ModePanic:
		panic(PanicValue{Point: name})
	case ModeLatency:
		time.Sleep(pt.lat)
	}
	return nil
}

// Partial asks whether a write of n bytes at this point should be torn.
// It reports the number of bytes to actually write and whether the point
// fired; an unarmed or non-partial point reports (n, false). The
// truncation length is drawn from the point's RNG: at least 1 byte short,
// possibly zero bytes written.
func Partial(name string, n int) (int, bool) {
	pt := lookup(name)
	if pt == nil || pt.mode != ModePartial || !pt.fire() {
		return n, false
	}
	if n <= 0 {
		return 0, true
	}
	pt.mu.Lock()
	k := pt.rng.Intn(n)
	pt.mu.Unlock()
	return k, true
}

// PointStatus describes one armed point for the admin/status surface.
type PointStatus struct {
	Name  string  `json:"name"`
	Mode  string  `json:"mode"`
	Prob  float64 `json:"p"`
	Max   int64   `json:"n,omitempty"` // -1 (unlimited) is omitted
	Hits  int64   `json:"hits"`
	Fires int64   `json:"fires"`
}

// Status reports the active spec, seed and per-point counters, sorted by
// point name; armed is false when no plan is installed.
func Status() (spec string, seed int64, points []PointStatus, ok bool) {
	pl := current.Load()
	if pl == nil || !armed.Load() {
		return "", 0, nil, false
	}
	for _, pt := range pl.points {
		pt.mu.Lock()
		st := PointStatus{
			Name: pt.name, Mode: string(pt.mode), Prob: pt.prob,
			Hits: pt.hits, Fires: pt.fires,
		}
		if pt.max >= 0 {
			st.Max = pt.max
		}
		pt.mu.Unlock()
		points = append(points, st)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Name < points[j].Name })
	return pl.spec, pl.seed, points, true
}
