package gxpath

import (
	"testing"

	"repro/internal/datagraph"
)

func TestRegularComplement(t *testing.T) {
	g := diamond(t)
	n := g.NumNodes()
	rel := evalPairs(t, g, "~a")
	a := evalPairs(t, g, "a")
	if rel.Len()+a.Len() != n*n {
		t.Fatalf("complement sizes: %d + %d != %d", rel.Len(), a.Len(), n*n)
	}
	a.Each(func(p datagraph.Pair) {
		if rel.Has(p.From, p.To) {
			t.Fatalf("pair %v in both a and ~a", p)
		}
	})
	// Double complement is identity.
	if !evalPairs(t, g, "~~a").Equal(a) {
		t.Fatal("~~a must equal a")
	}
}

func TestRegularIntersection(t *testing.T) {
	g := diamond(t)
	// a ∩ a≠ — a-edges with different endpoint values (all of them here).
	inter := evalPairs(t, g, "a & a!=")
	if !inter.Equal(evalPairs(t, g, "a!=")) {
		t.Fatalf("a & a!= = %v", inter.Sorted())
	}
	// a ∩ b is empty (disjoint labels).
	if evalPairs(t, g, "a & b").Len() != 0 {
		t.Fatal("a & b should be empty")
	}
	// Precedence: & binds tighter than |.
	p := MustParsePath("a | b & c")
	if _, ok := p.(PUnion); !ok {
		t.Fatalf("top operator should be union: %T", p)
	}
}

func TestRegularStar(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("x", datagraph.V("1"))
	g.MustAddNode("y", datagraph.V("2"))
	g.MustAddNode("z", datagraph.V("1"))
	g.MustAddEdge("x", "a", "y")
	g.MustAddEdge("y", "b", "z")
	// (a b)*: x reaches z in one iteration; reflexive pairs included.
	rel := evalPairs(t, g, "(a b)*")
	xi, _ := g.IndexOf("x")
	zi, _ := g.IndexOf("z")
	if !rel.Has(xi, zi) {
		t.Fatal("(a b)* should connect x to z")
	}
	for i := 0; i < g.NumNodes(); i++ {
		if !rel.Has(i, i) {
			t.Fatal("(α)* must be reflexive")
		}
	}
	// Core a* on labels still works (different node type).
	if _, ok := MustParsePath("a*").(PStar); !ok {
		t.Fatal("label star should stay core PStar")
	}
	if _, ok := MustParsePath("(a b)*").(PStarAny); !ok {
		t.Fatal("group star should be regular PStarAny")
	}
}

func TestRegularOutsideCore(t *testing.T) {
	for _, s := range []string{"~a", "a & b", "(a b)*"} {
		if UsesOnlyCore(MustParsePath(s)) {
			t.Errorf("%q should be outside GXPath-core", s)
		}
	}
	for _, s := range []string{"a", "a*", "a (a- b)=", "[<a>]"} {
		if !UsesOnlyCore(MustParsePath(s)) {
			t.Errorf("%q should be inside GXPath-core", s)
		}
	}
}

func TestRegularRoundTrip(t *testing.T) {
	for _, s := range []string{"~a", "~(a b)", "a & b", "(a b)*", "~a & (b c)*"} {
		p := MustParsePath(s)
		p2 := MustParsePath(p.String())
		if p.String() != p2.String() {
			t.Errorf("round trip %q -> %q -> %q", s, p.String(), p2.String())
		}
	}
}

// The classic regular-GXPath idiom the core fragment cannot express:
// "nodes with no outgoing a-edge to an equal-valued node" via complement.
func TestRegularExpressiveness(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("u", datagraph.V("1"))
	g.MustAddNode("v", datagraph.V("1"))
	g.MustAddNode("w", datagraph.V("2"))
	g.MustAddEdge("u", "a", "v") // equal values
	g.MustAddEdge("v", "a", "w") // different values
	phi := MustParseNode("!<a=>")
	got := NodesSatisfying(g, phi, datagraph.MarkedNulls)
	vi, _ := g.IndexOf("v")
	wi, _ := g.IndexOf("w")
	if len(got) != 2 || got[0] != vi || got[1] != wi {
		t.Fatalf("¬⟨a=⟩ = %v", got)
	}
}
