package gxpath

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagraph"
)

// Cross-validation of the dense bitmap relation algebra (snapshot path)
// against the sparse map-based reference: evalPath with a nil snapshot runs
// exactly the pre-snapshot semantics.

func randomDataGraph(seed int64, n, e int) *datagraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagraph.New()
	for i := 0; i < n; i++ {
		v := datagraph.V(fmt.Sprintf("v%d", rng.Intn(3)))
		if rng.Intn(5) == 0 {
			v = datagraph.Null()
		}
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("n%d", i)), v)
	}
	for k := 0; k < e; k++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		label := []string{"a", "b"}[rng.Intn(2)]
		g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("n%d", from)), label,
			datagraph.NodeID(fmt.Sprintf("n%d", to)))
	}
	return g
}

func TestDensePathEvalMatchesSparse(t *testing.T) {
	paths := []string{
		"a",
		"a-",
		"a*",
		"a- b",
		"(a b)=",
		"(a- b)!=",
		"a | b a",
		"e",
		"[<a b>] a",
		"~a",
		"a & (a b | a)",
		"(a b)*",
		"~(a*) & b-",
	}
	nodes := []string{
		"<a>",
		"<a (a- b)=>",
		"!<b b>",
		"<a> & !<b->",
		"<~(a b)>",
	}
	for seed := int64(0); seed < 10; seed++ {
		g := randomDataGraph(seed, 3+int(seed), 5+int(seed*4)%28)
		for _, mode := range []datagraph.CompareMode{datagraph.MarkedNulls, datagraph.SQLNulls} {
			for _, ps := range paths {
				p := MustParsePath(ps)
				dense := EvalPath(g, p, mode)       // freezes: dense bitmap algebra
				sparse := evalPath(g, nil, p, mode) // reference semantics
				if !dense.Equal(sparse) || !sparse.Equal(dense) {
					t.Fatalf("seed %d path %q mode %v: dense %v, sparse %v",
						seed, ps, mode, dense.Sorted(), sparse.Sorted())
				}
			}
			for _, ns := range nodes {
				nx := MustParseNode(ns)
				dense := EvalNode(g, nx, mode)
				sparse := evalNode(g, nil, nx, mode)
				for i := range dense {
					if dense[i] != sparse[i] {
						t.Fatalf("seed %d node expr %q mode %v: disagree at node %d",
							seed, ns, mode, i)
					}
				}
			}
		}
	}
}
