package gxpath

import "repro/internal/datagraph"

// This file extends the core fragment with the *regular* GXPath operators
// the paper deliberately excludes from GXPath_core^~ (Section 9): negation
// of path expressions ¬α, intersection α∩β, and transitive closure α* over
// arbitrary path expressions. [26] proved static-analysis undecidability
// for the regular language; the paper's Theorem 7 sharpens this to the core
// fragment. Keeping the regular operators behind distinct AST nodes lets
// UsesOnlyCore delimit exactly the fragment each theorem speaks about.
//
// Concrete syntax (ParsePath): prefix '~' for complement, infix '&' for
// intersection, and postfix '*' after a parenthesised group for the
// generalised closure.

// PNeg is ¬α: the complement of [[α]] within V × V.
type PNeg struct{ Inner PathExpr }

// PAnd is α∩β.
type PAnd struct{ L, R PathExpr }

// PStarAny is α* for an arbitrary path expression (regular GXPath; core
// GXPath only closes single labels, see PStar).
type PStarAny struct{ Inner PathExpr }

func (PNeg) isPath()     {}
func (PAnd) isPath()     {}
func (PStarAny) isPath() {}

func (p PNeg) String() string     { return "~" + pathGroup(p.Inner) }
func (p PAnd) String() string     { return pathGroup(p.L) + " & " + pathGroup(p.R) }
func (p PStarAny) String() string { return "(" + p.Inner.String() + ")*" }

// evalRegular handles the non-core operators; called from evalPath.
func evalRegular(g *datagraph.Graph, snap *datagraph.Snapshot, p PathExpr, mode datagraph.CompareMode) (*datagraph.PairSet, bool) {
	switch t := p.(type) {
	case PNeg:
		inner := evalPath(g, snap, t.Inner, mode)
		return datagraph.ComplementPairs(inner, g.NumNodes()), true
	case PAnd:
		return evalPath(g, snap, t.L, mode).Intersect(evalPath(g, snap, t.R, mode)), true
	case PStarAny:
		rel := evalPath(g, snap, t.Inner, mode)
		return reflexiveTransitiveClosure(g, snap, rel), true
	default:
		return nil, false
	}
}

func reflexiveTransitiveClosure(g *datagraph.Graph, snap *datagraph.Snapshot, rel *datagraph.PairSet) *datagraph.PairSet {
	n := g.NumNodes()
	out := newRel(g, snap)
	if rel.Dense() {
		// The relation's bitmap rows double as adjacency.
		return closureRows(n, out, func(v int, visit func(int)) {
			rel.EachInRow(v, visit)
		})
	}
	adj := make(map[int][]int)
	rel.Each(func(p datagraph.Pair) { adj[p.From] = append(adj[p.From], p.To) })
	return closureRows(n, out, func(v int, visit func(int)) {
		for _, w := range adj[v] {
			visit(w)
		}
	})
}
