// Package gxpath implements GXPath-core with data value comparisons
// (GXPath_core^~, Section 9 of Francis & Libkin PODS'17): the adaptation of
// XPath to data graphs, with mutually recursive path expressions and node
// expressions evaluated per Figure 1 of the paper:
//
//	α, β := ε | a | a⁻ | a* | a⁻* | α·β | α∪β | α= | α≠ | [ϕ]
//	φ, ψ := ¬φ | φ∧ψ | φ∨ψ | ⟨α⟩
//
// Concrete syntax:
//
//	path:  () | a | a- | a* | a-* | α β (or α/β) | α|β | α= | α!= | [φ]
//	node:  !φ | φ & ψ | φ | ψ | <α> | (φ)
//
// The package also provides the Theorem 7 constructions ϕ_G and ϕ_δ used to
// prove undecidability of satisfiability and containment, plus bounded
// checkers used by the experiments.
package gxpath

// PathExpr is a path expression α; its semantics is a binary relation on
// nodes.
type PathExpr interface {
	String() string
	isPath()
}

// NodeExpr is a node expression φ; its semantics is a set of nodes.
type NodeExpr interface {
	String() string
	isNode()
}

// PEps is ε: the identity relation.
type PEps struct{}

// PLabel is a single-label step a (or its inverse a⁻).
type PLabel struct {
	Label   string
	Inverse bool
}

// PStar is a* (or a⁻*): reflexive-transitive closure of a single-label step.
// Core GXPath allows transitive closure only over labels, not over arbitrary
// path expressions (the regular fragment that [26] proved undecidable is
// larger; see Section 9).
type PStar struct {
	Label   string
	Inverse bool
}

// PConcat is α·β (relational composition).
type PConcat struct{ L, R PathExpr }

// PUnion is α∪β.
type PUnion struct{ L, R PathExpr }

// PEq is α=: the pairs of α carrying equal data values.
type PEq struct{ Inner PathExpr }

// PNeq is α≠: the pairs of α carrying different data values.
type PNeq struct{ Inner PathExpr }

// PTest is [φ]: the identity on nodes satisfying φ.
type PTest struct{ Cond NodeExpr }

func (PEps) isPath()    {}
func (PLabel) isPath()  {}
func (PStar) isPath()   {}
func (PConcat) isPath() {}
func (PUnion) isPath()  {}
func (PEq) isPath()     {}
func (PNeq) isPath()    {}
func (PTest) isPath()   {}

// NNot is ¬φ.
type NNot struct{ Inner NodeExpr }

// NAnd is φ∧ψ.
type NAnd struct{ L, R NodeExpr }

// NOr is φ∨ψ.
type NOr struct{ L, R NodeExpr }

// NExists is ⟨α⟩: nodes from which a path satisfying α starts.
type NExists struct{ Path PathExpr }

func (NNot) isNode()    {}
func (NAnd) isNode()    {}
func (NOr) isNode()     {}
func (NExists) isNode() {}

func (PEps) String() string { return "()" }

func (p PLabel) String() string {
	if p.Inverse {
		return p.Label + "-"
	}
	return p.Label
}

func (p PStar) String() string {
	if p.Inverse {
		return p.Label + "-*"
	}
	return p.Label + "*"
}

func pathGroup(p PathExpr) string {
	switch p.(type) {
	case PEps, PLabel, PStar, PTest:
		return p.String()
	default:
		return "(" + p.String() + ")"
	}
}

func (p PConcat) String() string { return pathGroup(p.L) + " " + pathGroup(p.R) }
func (p PUnion) String() string  { return p.L.String() + "|" + p.R.String() }
func (p PEq) String() string     { return pathGroup(p.Inner) + "=" }
func (p PNeq) String() string    { return pathGroup(p.Inner) + "!=" }
func (p PTest) String() string   { return "[" + p.Cond.String() + "]" }

func nodeGroup(n NodeExpr) string {
	switch n.(type) {
	case NExists, NNot:
		return n.String()
	default:
		return "(" + n.String() + ")"
	}
}

func (n NNot) String() string    { return "!" + nodeGroup(n.Inner) }
func (n NAnd) String() string    { return nodeGroup(n.L) + " & " + nodeGroup(n.R) }
func (n NOr) String() string     { return nodeGroup(n.L) + " | " + nodeGroup(n.R) }
func (n NExists) String() string { return "<" + n.Path.String() + ">" }

// ConcatAll folds a sequence of path expressions into nested PConcat
// (returns ε for the empty sequence).
func ConcatAll(ps ...PathExpr) PathExpr {
	if len(ps) == 0 {
		return PEps{}
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = PConcat{L: out, R: p}
	}
	return out
}

// AndAll folds node expressions into nested NAnd; empty input is not allowed
// (GXPath-core has no truth constant) and panics.
func AndAll(ns ...NodeExpr) NodeExpr {
	if len(ns) == 0 {
		panic("gxpath: AndAll of nothing")
	}
	out := ns[0]
	for _, n := range ns[1:] {
		out = NAnd{L: out, R: n}
	}
	return out
}

// Word returns the path expression a₁·…·aₙ for forward labels.
func Word(labels ...string) PathExpr {
	ps := make([]PathExpr, len(labels))
	for i, l := range labels {
		ps[i] = PLabel{Label: l}
	}
	return ConcatAll(ps...)
}

// InverseWord returns (aₙ⁻·…·a₁⁻), the inverse traversal of Word(labels).
func InverseWord(labels ...string) PathExpr {
	ps := make([]PathExpr, len(labels))
	for i := range labels {
		ps[i] = PLabel{Label: labels[len(labels)-1-i], Inverse: true}
	}
	return ConcatAll(ps...)
}

// UsesOnlyCore verifies the expression stays inside GXPath_core^~: transitive
// closure only on labels (guaranteed by the AST) and no constant data-value
// tests (not representable in the AST). It exists as a documentation anchor
// and always returns true for well-typed ASTs.
func UsesOnlyCore(p PathExpr) bool {
	switch t := p.(type) {
	case PEps, PLabel, PStar:
		return true
	case PConcat:
		return UsesOnlyCore(t.L) && UsesOnlyCore(t.R)
	case PUnion:
		return UsesOnlyCore(t.L) && UsesOnlyCore(t.R)
	case PEq:
		return UsesOnlyCore(t.Inner)
	case PNeq:
		return UsesOnlyCore(t.Inner)
	case PTest:
		return usesOnlyCoreNode(t.Cond)
	default:
		return false
	}
}

func usesOnlyCoreNode(n NodeExpr) bool {
	switch t := n.(type) {
	case NNot:
		return usesOnlyCoreNode(t.Inner)
	case NAnd:
		return usesOnlyCoreNode(t.L) && usesOnlyCoreNode(t.R)
	case NOr:
		return usesOnlyCoreNode(t.L) && usesOnlyCoreNode(t.R)
	case NExists:
		return UsesOnlyCore(t.Path)
	default:
		return false
	}
}
