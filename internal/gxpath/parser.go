package gxpath

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// ParsePath parses a path expression in the concrete syntax of the package
// comment.
func ParsePath(input string) (PathExpr, error) {
	p := &parser{input: input}
	e, err := p.parsePathUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) {
		return nil, fmt.Errorf("gxpath: unexpected %q at offset %d", p.rest(), p.pos)
	}
	return e, nil
}

// ParseNode parses a node expression.
func ParseNode(input string) (NodeExpr, error) {
	p := &parser{input: input}
	e, err := p.parseNodeOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) {
		return nil, fmt.Errorf("gxpath: unexpected %q at offset %d", p.rest(), p.pos)
	}
	return e, nil
}

// MustParsePath is ParsePath that panics on error.
func MustParsePath(input string) PathExpr {
	e, err := ParsePath(input)
	if err != nil {
		panic(err)
	}
	return e
}

// MustParseNode is ParseNode that panics on error.
func MustParseNode(input string) NodeExpr {
	e, err := ParseNode(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	input string
	pos   int
}

func (p *parser) rest() string {
	if p.pos >= len(p.input) {
		return "<eof>"
	}
	r := p.input[p.pos:]
	if len(r) > 10 {
		r = r[:10]
	}
	return r
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case ' ', '\t', '\n', '/':
			// '/' is an optional XPath-flavoured composition separator.
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func isLabelStart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '#' || r == '↔'
}

func isLabelRune(r rune) bool { return isLabelStart(r) }

// label lexes a label; a trailing '-' (inverse marker) is NOT part of the
// label here, unlike in rex/ree/rem, because GXPath uses a⁻ for inverses.
func (p *parser) label() (string, error) {
	start := p.pos
	for p.pos < len(p.input) {
		r, size := utf8.DecodeRuneInString(p.input[p.pos:])
		if !isLabelRune(r) {
			break
		}
		p.pos += size
	}
	if p.pos == start {
		return "", fmt.Errorf("gxpath: expected label at offset %d, got %q", p.pos, p.rest())
	}
	return p.input[start:p.pos], nil
}

func (p *parser) parsePathUnion() (PathExpr, error) {
	l, err := p.parsePathAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return l, nil
		}
		p.pos++
		r, err := p.parsePathAnd()
		if err != nil {
			return nil, err
		}
		l = PUnion{L: l, R: r}
	}
}

// parsePathAnd handles the regular-GXPath intersection α & β (see
// regular.go); it binds tighter than union, looser than concatenation.
func (p *parser) parsePathAnd() (PathExpr, error) {
	l, err := p.parsePathConcat()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '&' {
			return l, nil
		}
		p.pos++
		r, err := p.parsePathConcat()
		if err != nil {
			return nil, err
		}
		l = PAnd{L: l, R: r}
	}
}

func (p *parser) parsePathConcat() (PathExpr, error) {
	var factors []PathExpr
	for {
		p.skipSpace()
		c := p.peek()
		r, _ := utf8.DecodeRuneInString(p.input[p.pos:])
		if c == '(' || c == '[' || c == '~' || (p.pos < len(p.input) && isLabelStart(r)) {
			f, err := p.parsePathFactor()
			if err != nil {
				return nil, err
			}
			factors = append(factors, f)
			continue
		}
		break
	}
	switch len(factors) {
	case 0:
		return nil, fmt.Errorf("gxpath: expected path expression at offset %d, got %q", p.pos, p.rest())
	case 1:
		return factors[0], nil
	default:
		return ConcatAll(factors...), nil
	}
}

func (p *parser) parsePathFactor() (PathExpr, error) {
	atom, err := p.parsePathAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.peek() == '=':
			p.pos++
			atom = PEq{Inner: atom}
		case p.peek() == '!' && p.pos+1 < len(p.input) && p.input[p.pos+1] == '=':
			p.pos += 2
			atom = PNeq{Inner: atom}
		default:
			return atom, nil
		}
	}
}

func (p *parser) parsePathAtom() (PathExpr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '~':
		// Regular-GXPath complement (outside the core fragment).
		p.pos++
		inner, err := p.parsePathAtom()
		if err != nil {
			return nil, err
		}
		return PNeg{Inner: inner}, nil
	case c == '(':
		p.pos++
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
			return PEps{}, nil
		}
		e, err := p.parsePathUnion()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("gxpath: missing ')' at offset %d", p.pos)
		}
		p.pos++
		if p.peek() == '*' {
			// Regular-GXPath closure over an arbitrary path expression.
			p.pos++
			return PStarAny{Inner: e}, nil
		}
		return e, nil
	case c == '[':
		p.pos++
		cond, err := p.parseNodeOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return nil, fmt.Errorf("gxpath: missing ']' at offset %d", p.pos)
		}
		p.pos++
		return PTest{Cond: cond}, nil
	default:
		lab, err := p.label()
		if err != nil {
			return nil, err
		}
		inverse := false
		if p.peek() == '-' {
			p.pos++
			inverse = true
		}
		if p.peek() == '*' {
			p.pos++
			return PStar{Label: lab, Inverse: inverse}, nil
		}
		return PLabel{Label: lab, Inverse: inverse}, nil
	}
}

func (p *parser) parseNodeOr() (NodeExpr, error) {
	l, err := p.parseNodeAnd()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return l, nil
		}
		p.pos++
		r, err := p.parseNodeAnd()
		if err != nil {
			return nil, err
		}
		l = NOr{L: l, R: r}
	}
}

func (p *parser) parseNodeAnd() (NodeExpr, error) {
	l, err := p.parseNodeAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '&' {
			return l, nil
		}
		p.pos++
		r, err := p.parseNodeAtom()
		if err != nil {
			return nil, err
		}
		l = NAnd{L: l, R: r}
	}
}

func (p *parser) parseNodeAtom() (NodeExpr, error) {
	p.skipSpace()
	switch p.peek() {
	case '!':
		p.pos++
		inner, err := p.parseNodeAtom()
		if err != nil {
			return nil, err
		}
		return NNot{Inner: inner}, nil
	case '<':
		p.pos++
		path, err := p.parsePathUnion()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != '>' {
			return nil, fmt.Errorf("gxpath: missing '>' at offset %d", p.pos)
		}
		p.pos++
		return NExists{Path: path}, nil
	case '(':
		p.pos++
		e, err := p.parseNodeOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("gxpath: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	default:
		return nil, fmt.Errorf("gxpath: expected node expression at offset %d, got %q", p.pos, p.rest())
	}
}
