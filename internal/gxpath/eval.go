package gxpath

import "repro/internal/datagraph"

// This file implements Figure 1 of the paper verbatim: the semantics of
// GXPath_core^~ path expressions ([[α]]_G ⊆ V×V) and node expressions
// ([[φ]]_G ⊆ V), computed bottom-up with explicit relations.

// EvalPath computes [[α]]_G under the given data-comparison mode.
func EvalPath(g *datagraph.Graph, p PathExpr, mode datagraph.CompareMode) *datagraph.PairSet {
	switch t := p.(type) {
	case PEps:
		// [[ε]] = {(v, v) | v ∈ V}
		out := datagraph.NewPairSet()
		for v := 0; v < g.NumNodes(); v++ {
			out.Add(v, v)
		}
		return out
	case PLabel:
		// [[a]] = {(v, v′) | (v, a, v′) ∈ E}; [[a⁻]] swaps the pair. The
		// per-label edge index yields exactly the matching edges.
		out := datagraph.NewPairSet()
		for _, p := range g.LabelPairs(t.Label) {
			if t.Inverse {
				out.Add(p.To, p.From)
			} else {
				out.Add(p.From, p.To)
			}
		}
		return out
	case PStar:
		// [[a*]] = reflexive-transitive closure of [[a]].
		return starClosure(g, t.Label, t.Inverse)
	case PConcat:
		// [[α·β]] = [[α]] ∘ [[β]]
		return compose(EvalPath(g, t.L, mode), EvalPath(g, t.R, mode))
	case PUnion:
		// [[α∪β]] = [[α]] ∪ [[β]]
		return EvalPath(g, t.L, mode).Union(EvalPath(g, t.R, mode))
	case PEq:
		// [[α=]] = {(v, v′) ∈ [[α]] | δ(v) = δ(v′)}
		return filterData(g, EvalPath(g, t.Inner, mode), mode, false)
	case PNeq:
		// [[α≠]] = {(v, v′) ∈ [[α]] | δ(v) ≠ δ(v′)}
		return filterData(g, EvalPath(g, t.Inner, mode), mode, true)
	case PTest:
		// [[[φ]]] = {(v, v) | v ∈ [[φ]]}
		sat := EvalNode(g, t.Cond, mode)
		out := datagraph.NewPairSet()
		for v, ok := range sat {
			if ok {
				out.Add(v, v)
			}
		}
		return out
	default:
		if rel, ok := evalRegular(g, p, mode); ok {
			return rel
		}
		panic("gxpath: unknown path expression")
	}
}

// EvalNode computes [[φ]]_G as a membership vector indexed by node index.
func EvalNode(g *datagraph.Graph, n NodeExpr, mode datagraph.CompareMode) []bool {
	switch t := n.(type) {
	case NNot:
		// [[¬φ]] = V − [[φ]]
		inner := EvalNode(g, t.Inner, mode)
		out := make([]bool, len(inner))
		for i, b := range inner {
			out[i] = !b
		}
		return out
	case NAnd:
		l, r := EvalNode(g, t.L, mode), EvalNode(g, t.R, mode)
		out := make([]bool, len(l))
		for i := range l {
			out[i] = l[i] && r[i]
		}
		return out
	case NOr:
		l, r := EvalNode(g, t.L, mode), EvalNode(g, t.R, mode)
		out := make([]bool, len(l))
		for i := range l {
			out[i] = l[i] || r[i]
		}
		return out
	case NExists:
		// [[⟨α⟩]] = {v | ∃v′ (v, v′) ∈ [[α]]}
		rel := EvalPath(g, t.Path, mode)
		out := make([]bool, g.NumNodes())
		rel.Each(func(p datagraph.Pair) { out[p.From] = true })
		return out
	default:
		panic("gxpath: unknown node expression")
	}
}

// NodesSatisfying returns the node indices in [[φ]]_G, ascending.
func NodesSatisfying(g *datagraph.Graph, n NodeExpr, mode datagraph.CompareMode) []int {
	sat := EvalNode(g, n, mode)
	var out []int
	for i, ok := range sat {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// Satisfies reports whether the node with the given id is in [[φ]]_G.
func Satisfies(g *datagraph.Graph, id datagraph.NodeID, n NodeExpr, mode datagraph.CompareMode) bool {
	i, ok := g.IndexOf(id)
	if !ok {
		return false
	}
	return EvalNode(g, n, mode)[i]
}

func starClosure(g *datagraph.Graph, label string, inverse bool) *datagraph.PairSet {
	out := datagraph.NewPairSet()
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		seen := make([]bool, n)
		seen[u] = true
		stack := []int{u}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out.Add(u, v)
			var adj []int
			if inverse {
				adj = g.InEdges(v, label)
			} else {
				adj = g.OutEdges(v, label)
			}
			for _, to := range adj {
				if !seen[to] {
					seen[to] = true
					stack = append(stack, to)
				}
			}
		}
	}
	return out
}

func compose(a, b *datagraph.PairSet) *datagraph.PairSet {
	// Index b by source.
	byFrom := make(map[int][]int)
	b.Each(func(p datagraph.Pair) { byFrom[p.From] = append(byFrom[p.From], p.To) })
	out := datagraph.NewPairSet()
	a.Each(func(p datagraph.Pair) {
		for _, t := range byFrom[p.To] {
			out.Add(p.From, t)
		}
	})
	return out
}

func filterData(g *datagraph.Graph, rel *datagraph.PairSet, mode datagraph.CompareMode, neq bool) *datagraph.PairSet {
	out := datagraph.NewPairSet()
	rel.Each(func(p datagraph.Pair) {
		dv, dw := g.Value(p.From), g.Value(p.To)
		if neq {
			if mode.Neq(dv, dw) {
				out.AddPair(p)
			}
		} else if mode.Eq(dv, dw) {
			out.AddPair(p)
		}
	})
	return out
}
