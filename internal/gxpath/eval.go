package gxpath

import "repro/internal/datagraph"

// This file implements Figure 1 of the paper: the semantics of
// GXPath_core^~ path expressions ([[α]]_G ⊆ V×V) and node expressions
// ([[φ]]_G ⊆ V), computed bottom-up with explicit relations. The public
// entry points freeze the graph once and evaluate over the interned
// snapshot with dense bitmap relations (word-wise composition, closure and
// boolean algebra); the map-based path remains as the fallback for graphs
// too large for dense bitmaps (and as the cross-validation reference).

// EvalPath computes [[α]]_G under the given data-comparison mode.
func EvalPath(g *datagraph.Graph, p PathExpr, mode datagraph.CompareMode) *datagraph.PairSet {
	return evalPath(g, g.Freeze(), p, mode)
}

// newRel returns an empty relation sized to the graph when a snapshot is
// available (dense bitmap rows), and a sparse set otherwise.
func newRel(g *datagraph.Graph, snap *datagraph.Snapshot) *datagraph.PairSet {
	if snap != nil {
		return datagraph.NewPairSetSized(snap.NumNodes())
	}
	return datagraph.NewPairSet()
}

// evalPath is EvalPath against an optional snapshot (nil forces the
// map-based reference semantics).
func evalPath(g *datagraph.Graph, snap *datagraph.Snapshot, p PathExpr, mode datagraph.CompareMode) *datagraph.PairSet {
	switch t := p.(type) {
	case PEps:
		// [[ε]] = {(v, v) | v ∈ V}
		out := newRel(g, snap)
		for v := 0; v < g.NumNodes(); v++ {
			out.Add(v, v)
		}
		return out
	case PLabel:
		// [[a]] = {(v, v′) | (v, a, v′) ∈ E}; [[a⁻]] swaps the pair. The
		// per-label edge index yields exactly the matching edges.
		out := newRel(g, snap)
		if snap != nil {
			if l, ok := snap.LabelID(t.Label); ok {
				if t.Inverse {
					snap.EachLabelEdge(l, func(from, to int32) { out.Add(int(to), int(from)) })
				} else {
					snap.EachLabelEdge(l, func(from, to int32) { out.Add(int(from), int(to)) })
				}
			}
			return out
		}
		for _, p := range g.LabelPairs(t.Label) {
			if t.Inverse {
				out.Add(p.To, p.From)
			} else {
				out.Add(p.From, p.To)
			}
		}
		return out
	case PStar:
		// [[a*]] = reflexive-transitive closure of [[a]].
		return starClosure(g, snap, t.Label, t.Inverse)
	case PConcat:
		// [[α·β]] = [[α]] ∘ [[β]] (word-wise row union when dense)
		return datagraph.ComposePairs(
			evalPath(g, snap, t.L, mode), evalPath(g, snap, t.R, mode))
	case PUnion:
		// [[α∪β]] = [[α]] ∪ [[β]]
		return evalPath(g, snap, t.L, mode).Union(evalPath(g, snap, t.R, mode))
	case PEq:
		// [[α=]] = {(v, v′) ∈ [[α]] | δ(v) = δ(v′)}
		return filterData(g, snap, evalPath(g, snap, t.Inner, mode), mode, false)
	case PNeq:
		// [[α≠]] = {(v, v′) ∈ [[α]] | δ(v) ≠ δ(v′)}
		return filterData(g, snap, evalPath(g, snap, t.Inner, mode), mode, true)
	case PTest:
		// [[[φ]]] = {(v, v) | v ∈ [[φ]]}
		sat := evalNode(g, snap, t.Cond, mode)
		out := newRel(g, snap)
		for v, ok := range sat {
			if ok {
				out.Add(v, v)
			}
		}
		return out
	default:
		if rel, ok := evalRegular(g, snap, p, mode); ok {
			return rel
		}
		panic("gxpath: unknown path expression")
	}
}

// EvalNode computes [[φ]]_G as a membership vector indexed by node index.
func EvalNode(g *datagraph.Graph, n NodeExpr, mode datagraph.CompareMode) []bool {
	return evalNode(g, g.Freeze(), n, mode)
}

func evalNode(g *datagraph.Graph, snap *datagraph.Snapshot, n NodeExpr, mode datagraph.CompareMode) []bool {
	switch t := n.(type) {
	case NNot:
		// [[¬φ]] = V − [[φ]]
		inner := evalNode(g, snap, t.Inner, mode)
		out := make([]bool, len(inner))
		for i, b := range inner {
			out[i] = !b
		}
		return out
	case NAnd:
		l, r := evalNode(g, snap, t.L, mode), evalNode(g, snap, t.R, mode)
		out := make([]bool, len(l))
		for i := range l {
			out[i] = l[i] && r[i]
		}
		return out
	case NOr:
		l, r := evalNode(g, snap, t.L, mode), evalNode(g, snap, t.R, mode)
		out := make([]bool, len(l))
		for i := range l {
			out[i] = l[i] || r[i]
		}
		return out
	case NExists:
		// [[⟨α⟩]] = {v | ∃v′ (v, v′) ∈ [[α]]}
		rel := evalPath(g, snap, t.Path, mode)
		out := make([]bool, g.NumNodes())
		if rel.Dense() {
			for u := range out {
				out[u] = rel.RowNonEmpty(u)
			}
			return out
		}
		rel.Each(func(p datagraph.Pair) { out[p.From] = true })
		return out
	default:
		panic("gxpath: unknown node expression")
	}
}

// NodesSatisfying returns the node indices in [[φ]]_G, ascending.
func NodesSatisfying(g *datagraph.Graph, n NodeExpr, mode datagraph.CompareMode) []int {
	sat := EvalNode(g, n, mode)
	var out []int
	for i, ok := range sat {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// Satisfies reports whether the node with the given id is in [[φ]]_G.
func Satisfies(g *datagraph.Graph, id datagraph.NodeID, n NodeExpr, mode datagraph.CompareMode) bool {
	i, ok := g.IndexOf(id)
	if !ok {
		return false
	}
	return EvalNode(g, n, mode)[i]
}

// closureRows computes the reflexive-transitive closure of the adjacency
// relation presented by adj: one bitset BFS per source, each reachable set
// published as a (word-wise, when dense) row union into out. All four
// closure variants — label star and generalized star, snapshot and
// fallback — share it and differ only in their adjacency callback.
func closureRows(n int, out *datagraph.PairSet, adj func(v int, visit func(int))) *datagraph.PairSet {
	seen := datagraph.NewNodeSet(n)
	var stack []int
	for u := 0; u < n; u++ {
		seen.Clear()
		seen.Add(u)
		stack = append(stack[:0], u)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			adj(v, func(to int) {
				if seen.Add(to) {
					stack = append(stack, to)
				}
			})
		}
		out.AddRowSet(u, seen)
	}
	return out
}

func starClosure(g *datagraph.Graph, snap *datagraph.Snapshot, label string, inverse bool) *datagraph.PairSet {
	out := newRel(g, snap)
	n := g.NumNodes()
	if snap != nil {
		l, ok := snap.LabelID(label)
		if !ok {
			// No such edges: the closure is the identity.
			for u := 0; u < n; u++ {
				out.Add(u, u)
			}
			return out
		}
		return closureRows(n, out, func(v int, visit func(int)) {
			var adj []int32
			if inverse {
				adj = snap.InLabeled(v, l)
			} else {
				adj = snap.OutLabeled(v, l)
			}
			for _, to := range adj {
				visit(int(to))
			}
		})
	}
	return closureRows(n, out, func(v int, visit func(int)) {
		var adj []int
		if inverse {
			adj = g.InEdges(v, label)
		} else {
			adj = g.OutEdges(v, label)
		}
		for _, to := range adj {
			visit(to)
		}
	})
}

func filterData(g *datagraph.Graph, snap *datagraph.Snapshot, rel *datagraph.PairSet, mode datagraph.CompareMode, neq bool) *datagraph.PairSet {
	out := newRel(g, snap)
	if snap != nil {
		// Compare interned value ids: equal ids ⇔ equal values, with the
		// null id excluded under SQL-null semantics.
		nullID := snap.NullValueID()
		rel.Each(func(p datagraph.Pair) {
			dv, dw := snap.ValueID(p.From), snap.ValueID(p.To)
			if mode == datagraph.SQLNulls && (dv == nullID || dw == nullID) {
				return
			}
			if (dv != dw) == neq {
				out.AddPair(p)
			}
		})
		return out
	}
	rel.Each(func(p datagraph.Pair) {
		dv, dw := g.Value(p.From), g.Value(p.To)
		if neq {
			if mode.Neq(dv, dw) {
				out.AddPair(p)
			}
		} else if mode.Eq(dv, dw) {
			out.AddPair(p)
		}
	})
	return out
}
