package gxpath

import (
	"fmt"
	"sort"

	"repro/internal/datagraph"
)

// This file implements the Theorem 7 machinery: the formulas ϕ_G and ϕ_δ
// that "pin" a data tree G inside any satisfying graph, and a bounded model
// search used to exercise the (undecidable in general) satisfiability
// problem on small instances.

// TreeChildren returns the children of node v in g viewed as a tree, sorted
// by label. It errors if g is not a tree rooted at root: every non-root node
// must have exactly one incoming edge, the root none, and all nodes must be
// reachable from the root.
func treeChildren(g *datagraph.Graph, v int) []datagraph.HalfEdge {
	out := append([]datagraph.HalfEdge(nil), g.Out(v)...)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// ValidateTree checks that g is a tree rooted at root.
func ValidateTree(g *datagraph.Graph, root datagraph.NodeID) error {
	ri, ok := g.IndexOf(root)
	if !ok {
		return fmt.Errorf("gxpath: root %q not in graph", string(root))
	}
	if len(g.In(ri)) != 0 {
		return fmt.Errorf("gxpath: root %q has incoming edges", string(root))
	}
	seen := make([]bool, g.NumNodes())
	seen[ri] = true
	stack := []int{ri}
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, he := range g.Out(v) {
			if len(g.In(he.To)) != 1 {
				return fmt.Errorf("gxpath: node %q has %d parents", string(g.Node(he.To).ID), len(g.In(he.To)))
			}
			if seen[he.To] {
				return fmt.Errorf("gxpath: node %q reached twice (cycle or dag)", string(g.Node(he.To).ID))
			}
			seen[he.To] = true
			count++
			stack = append(stack, he.To)
		}
	}
	if count != g.NumNodes() {
		return fmt.Errorf("gxpath: %d of %d nodes unreachable from root", g.NumNodes()-count, g.NumNodes())
	}
	return nil
}

// HasNonRepeatingProperty reports whether no label occurs on two different
// out-edges of the same node (Lemma 2's non-repeating property for trees).
func HasNonRepeatingProperty(g *datagraph.Graph) bool {
	for v := 0; v < g.NumNodes(); v++ {
		seen := make(map[string]struct{})
		for _, he := range g.Out(v) {
			if _, dup := seen[he.Label]; dup {
				return false
			}
			seen[he.Label] = struct{}{}
		}
	}
	return true
}

// PhiG builds the Theorem 7 formula ϕ_G for the tree g rooted at root: a
// single-node tree yields ⟨ε⟩; a tree whose root has children labelled
// a₁…aₙ with subtrees G₁…Gₙ yields ⟨a₁·[ϕ_G₁]⟩ ∧ … ∧ ⟨aₙ·[ϕ_Gₙ]⟩. Any graph
// node satisfying ϕ_G is the root of a homomorphic image of g's topology.
func PhiG(g *datagraph.Graph, root datagraph.NodeID) (NodeExpr, error) {
	if err := ValidateTree(g, root); err != nil {
		return nil, err
	}
	ri, _ := g.IndexOf(root)
	return phiG(g, ri), nil
}

func phiG(g *datagraph.Graph, v int) NodeExpr {
	children := treeChildren(g, v)
	if len(children) == 0 {
		return NExists{Path: PEps{}}
	}
	conjuncts := make([]NodeExpr, len(children))
	for i, he := range children {
		conjuncts[i] = NExists{Path: PConcat{
			L: PLabel{Label: he.Label},
			R: PTest{Cond: phiG(g, he.To)},
		}}
	}
	return AndAll(conjuncts...)
}

// PhiDelta builds the Theorem 7 formula ϕ_δ for the tree g rooted at root:
// ⋀ {¬⟨w_y · (w_y⁻ · w_z)=⟩ | y ≠ z nodes of g}, where w_x is the label of
// the unique root-to-x path. At a node satisfying ϕ_G, ϕ_δ forces the data
// values along the embedded copy of g to be pairwise distinct, which pins g
// inside the model up to renaming.
func PhiDelta(g *datagraph.Graph, root datagraph.NodeID) (NodeExpr, error) {
	if err := ValidateTree(g, root); err != nil {
		return nil, err
	}
	ri, _ := g.IndexOf(root)
	words := rootWords(g, ri)
	var conjuncts []NodeExpr
	for y := 0; y < g.NumNodes(); y++ {
		for z := 0; z < g.NumNodes(); z++ {
			if y == z {
				continue
			}
			wy, wz := words[y], words[z]
			inner := PConcat{L: InverseWord(wy...), R: Word(wz...)}
			conjuncts = append(conjuncts, NNot{Inner: NExists{Path: PConcat{
				L: Word(wy...),
				R: PEq{Inner: inner},
			}}})
		}
	}
	if len(conjuncts) == 0 {
		// Single-node tree: no pair to distinguish; ϕ_δ is vacuous. Encode
		// the tautology ¬⟨ε≠⟩... ε≠ is always empty, so ⟨ε≠⟩ is false.
		return NNot{Inner: NExists{Path: PNeq{Inner: PEps{}}}}, nil
	}
	return AndAll(conjuncts...), nil
}

// rootWords returns for each node index the label word of the unique path
// from the root.
func rootWords(g *datagraph.Graph, root int) [][]string {
	words := make([][]string, g.NumNodes())
	words[root] = []string{}
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, he := range g.Out(v) {
			w := make([]string, len(words[v])+1)
			copy(w, words[v])
			w[len(words[v])] = he.Label
			words[he.To] = w
			stack = append(stack, he.To)
		}
	}
	return words
}

// PhiPrime assembles the Theorem 7 satisfiability formula
// ϕ′ = ϕ_G ∧ ϕ_δ ∧ ¬ϕ: satisfiable iff some data graph G′ ⊇ G (up to
// renaming) has a node avoiding ϕ at g's root position.
func PhiPrime(g *datagraph.Graph, root datagraph.NodeID, phi NodeExpr) (NodeExpr, error) {
	pg, err := PhiG(g, root)
	if err != nil {
		return nil, err
	}
	pd, err := PhiDelta(g, root)
	if err != nil {
		return nil, err
	}
	return NAnd{L: NAnd{L: pg, R: pd}, R: NNot{Inner: phi}}, nil
}

// ContainedWithin reports whether [[φ]]_G ⊆ [[ψ]]_G for every graph G up to
// the given bounds — the bounded slice of the containment problem, which
// Theorem 7 proves undecidable in general. It searches for a countermodel
// of φ ∧ ¬ψ; (found, witness) semantics mirror SearchModel: contained=false
// comes with the separating graph.
func ContainedWithin(phi, psi NodeExpr, maxNodes int, labels []string, maxCandidates int) (contained bool, counter *datagraph.Graph) {
	counterexample := NAnd{L: phi, R: NNot{Inner: psi}}
	g, found := SearchModel(counterexample, maxNodes, labels, maxCandidates)
	if found {
		return false, g
	}
	return true, nil
}

// SearchModel enumerates small data graphs looking for one in which φ is
// satisfied by at least one node. It explores graphs with up to maxNodes
// nodes over the given labels, with data values drawn canonically (value i
// of node i, merged according to set partitions), and gives up after
// maxCandidates graphs. Satisfiability of GXPath_core^~ is undecidable
// (Theorem 7), so this is necessarily a semi-decision helper for the
// experiments.
func SearchModel(phi NodeExpr, maxNodes int, labels []string, maxCandidates int) (*datagraph.Graph, bool) {
	tried := 0
	for n := 1; n <= maxNodes; n++ {
		slots := n * n * len(labels)
		if slots > 20 {
			return nil, false // too many edge subsets to enumerate
		}
		partitions := valuePartitions(n)
		for mask := 0; mask < 1<<uint(slots); mask++ {
			for _, part := range partitions {
				if tried >= maxCandidates {
					return nil, false
				}
				tried++
				g := buildCandidate(n, labels, mask, part)
				if sat := EvalNode(g, phi, datagraph.MarkedNulls); anyTrue(sat) {
					return g, true
				}
			}
		}
	}
	return nil, false
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// valuePartitions returns canonical value-class assignments for n nodes
// (restricted growth strings), so value equality patterns are enumerated
// without renaming duplicates.
func valuePartitions(n int) [][]int {
	var out [][]int
	var rec func(prefix []int, maxUsed int)
	rec = func(prefix []int, maxUsed int) {
		if len(prefix) == n {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for c := 0; c <= maxUsed+1; c++ {
			next := maxUsed
			if c > maxUsed {
				next = c
			}
			rec(append(prefix, c), next)
		}
	}
	rec([]int{}, -1)
	return out
}

func buildCandidate(n int, labels []string, mask int, part []int) *datagraph.Graph {
	g := datagraph.New()
	for i := 0; i < n; i++ {
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("m%d", i)), datagraph.V(fmt.Sprintf("v%d", part[i])))
	}
	slot := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for _, l := range labels {
				if mask&(1<<uint(slot)) != 0 {
					g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("m%d", u)), l, datagraph.NodeID(fmt.Sprintf("m%d", v)))
				}
				slot++
			}
		}
	}
	return g
}
