package gxpath

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagraph"
)

// Algebraic laws of the Figure 1 semantics, verified on random graphs.

func randomGraph(seed int64, n int) *datagraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagraph.New()
	for i := 0; i < n; i++ {
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("n%d", i)),
			datagraph.V(fmt.Sprintf("v%d", rng.Intn(3))))
	}
	for e := 0; e < 3*n; e++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		label := []string{"a", "b"}[rng.Intn(2)]
		g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("n%d", from)), label,
			datagraph.NodeID(fmt.Sprintf("n%d", to)))
	}
	return g
}

func TestLawUnionIsSetUnion(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 12)
		ab := EvalPath(g, MustParsePath("a|b"), datagraph.MarkedNulls)
		a := EvalPath(g, MustParsePath("a"), datagraph.MarkedNulls)
		b := EvalPath(g, MustParsePath("b"), datagraph.MarkedNulls)
		if !ab.Equal(a.Union(b)) {
			t.Fatalf("seed %d: [[a∪b]] ≠ [[a]] ∪ [[b]]", seed)
		}
	}
}

func TestLawConcatAssociative(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 12)
		l := EvalPath(g, MustParsePath("(a b) a"), datagraph.MarkedNulls)
		r := EvalPath(g, MustParsePath("a (b a)"), datagraph.MarkedNulls)
		if !l.Equal(r) {
			t.Fatalf("seed %d: composition not associative", seed)
		}
	}
}

func TestLawEpsilonIdentity(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 12)
		a := EvalPath(g, MustParsePath("a"), datagraph.MarkedNulls)
		l := EvalPath(g, MustParsePath("() a"), datagraph.MarkedNulls)
		r := EvalPath(g, MustParsePath("a ()"), datagraph.MarkedNulls)
		if !l.Equal(a) || !r.Equal(a) {
			t.Fatalf("seed %d: ε is not an identity", seed)
		}
	}
}

func TestLawInverseInvolution(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 12)
		a := EvalPath(g, MustParsePath("a"), datagraph.MarkedNulls)
		inv := EvalPath(g, MustParsePath("a-"), datagraph.MarkedNulls)
		// (v,w) ∈ [[a]] iff (w,v) ∈ [[a⁻]].
		okAll := true
		a.Each(func(p datagraph.Pair) {
			if !inv.Has(p.To, p.From) {
				okAll = false
			}
		})
		if !okAll || a.Len() != inv.Len() {
			t.Fatalf("seed %d: inverse is not an involution", seed)
		}
	}
}

func TestLawEqNeqPartitionNonNull(t *testing.T) {
	// Over graphs without nulls, [[α=]] ⊎ [[α≠]] = [[α]].
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 12)
		al := EvalPath(g, MustParsePath("a b"), datagraph.MarkedNulls)
		eq := EvalPath(g, MustParsePath("(a b)="), datagraph.MarkedNulls)
		ne := EvalPath(g, MustParsePath("(a b)!="), datagraph.MarkedNulls)
		if eq.Len()+ne.Len() != al.Len() {
			t.Fatalf("seed %d: = / ≠ do not partition", seed)
		}
		if eq.Intersect(ne).Len() != 0 {
			t.Fatalf("seed %d: = and ≠ overlap", seed)
		}
	}
}

func TestLawFilterIsIdentityRestriction(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 12)
		filtered := EvalPath(g, MustParsePath("[<a>]"), datagraph.MarkedNulls)
		sat := EvalNode(g, MustParseNode("<a>"), datagraph.MarkedNulls)
		count := 0
		for v, ok := range sat {
			if ok {
				count++
				if !filtered.Has(v, v) {
					t.Fatalf("seed %d: [φ] missing (v,v)", seed)
				}
			}
		}
		if filtered.Len() != count {
			t.Fatalf("seed %d: [φ] has non-diagonal pairs", seed)
		}
	}
}

func TestLawDoubleNegation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 12)
		phi := MustParseNode("<a> & !<b b>")
		nn := NNot{Inner: NNot{Inner: phi}}
		a := EvalNode(g, phi, datagraph.MarkedNulls)
		b := EvalNode(g, nn, datagraph.MarkedNulls)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: ¬¬φ ≠ φ at node %d", seed, i)
			}
		}
	}
}

func TestLawStarUnrolling(t *testing.T) {
	// [[a*]] = [[ε ∪ a·a*]].
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 10)
		star := EvalPath(g, MustParsePath("a*"), datagraph.MarkedNulls)
		unrolled := EvalPath(g, MustParsePath("()|a a*"), datagraph.MarkedNulls)
		if !star.Equal(unrolled) {
			t.Fatalf("seed %d: a* ≠ ε ∪ a·a*", seed)
		}
	}
}

// Regular extension laws: complement is an involution and intersection is
// the set intersection.
func TestLawRegularExtension(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 10)
		a := EvalPath(g, MustParsePath("a"), datagraph.MarkedNulls)
		nn := EvalPath(g, MustParsePath("~~a"), datagraph.MarkedNulls)
		if !a.Equal(nn) {
			t.Fatalf("seed %d: ~~a ≠ a", seed)
		}
		inter := EvalPath(g, MustParsePath("a & (a|b)"), datagraph.MarkedNulls)
		if !inter.Equal(a) {
			t.Fatalf("seed %d: a ∩ (a∪b) ≠ a", seed)
		}
	}
}
