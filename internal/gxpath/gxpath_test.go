package gxpath

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/datagraph"
)

const marked = datagraph.MarkedNulls

// diamond builds:
//
//	s(1) -a-> l(2) -b-> t(1)
//	s(1) -a-> r(3) -b-> t(1)
//	t -c-> s  (back edge)
func diamond(t *testing.T) *datagraph.Graph {
	t.Helper()
	g := datagraph.New()
	g.MustAddNode("s", datagraph.V("1"))
	g.MustAddNode("l", datagraph.V("2"))
	g.MustAddNode("r", datagraph.V("3"))
	g.MustAddNode("t", datagraph.V("1"))
	g.MustAddEdge("s", "a", "l")
	g.MustAddEdge("s", "a", "r")
	g.MustAddEdge("l", "b", "t")
	g.MustAddEdge("r", "b", "t")
	g.MustAddEdge("t", "c", "s")
	return g
}

func idx(t *testing.T, g *datagraph.Graph, id string) int {
	t.Helper()
	i, ok := g.IndexOf(datagraph.NodeID(id))
	if !ok {
		t.Fatalf("node %s missing", id)
	}
	return i
}

func evalPairs(t *testing.T, g *datagraph.Graph, expr string) *datagraph.PairSet {
	t.Helper()
	p, err := ParsePath(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return EvalPath(g, p, marked)
}

// TestFigure1Eps..TestFigure1Exists cover every rule of Figure 1.

func TestFigure1Eps(t *testing.T) {
	g := diamond(t)
	rel := evalPairs(t, g, "()")
	if rel.Len() != 4 {
		t.Fatalf("[[ε]] should be the identity, got %d pairs", rel.Len())
	}
	for i := 0; i < 4; i++ {
		if !rel.Has(i, i) {
			t.Fatalf("missing (%d,%d)", i, i)
		}
	}
}

func TestFigure1Label(t *testing.T) {
	g := diamond(t)
	rel := evalPairs(t, g, "a")
	s, l, r := idx(t, g, "s"), idx(t, g, "l"), idx(t, g, "r")
	if rel.Len() != 2 || !rel.Has(s, l) || !rel.Has(s, r) {
		t.Fatalf("[[a]] = %v", rel.Sorted())
	}
}

func TestFigure1Inverse(t *testing.T) {
	g := diamond(t)
	rel := evalPairs(t, g, "a-")
	s, l, r := idx(t, g, "s"), idx(t, g, "l"), idx(t, g, "r")
	if rel.Len() != 2 || !rel.Has(l, s) || !rel.Has(r, s) {
		t.Fatalf("[[a⁻]] = %v", rel.Sorted())
	}
}

func TestFigure1Star(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("x", datagraph.V("1"))
	g.MustAddNode("y", datagraph.V("2"))
	g.MustAddNode("z", datagraph.V("3"))
	g.MustAddEdge("x", "a", "y")
	g.MustAddEdge("y", "a", "z")
	rel := EvalPath(g, MustParsePath("a*"), marked)
	x, y, z := idx(t, g, "x"), idx(t, g, "y"), idx(t, g, "z")
	want := [][2]int{{x, x}, {x, y}, {x, z}, {y, y}, {y, z}, {z, z}}
	if rel.Len() != len(want) {
		t.Fatalf("[[a*]] = %v", rel.Sorted())
	}
	for _, p := range want {
		if !rel.Has(p[0], p[1]) {
			t.Fatalf("missing %v in [[a*]]", p)
		}
	}
	// Inverse star.
	rel2 := EvalPath(g, MustParsePath("a-*"), marked)
	if !rel2.Has(z, x) || !rel2.Has(z, z) || rel2.Has(x, z) {
		t.Fatalf("[[a⁻*]] = %v", rel2.Sorted())
	}
}

func TestFigure1ConcatAndUnion(t *testing.T) {
	g := diamond(t)
	s, tt := idx(t, g, "s"), idx(t, g, "t")
	// Both branches compose to (s,t); set semantics collapse them to one.
	rel := evalPairs(t, g, "a b")
	if rel.Len() != 1 || !rel.Has(s, tt) {
		t.Fatalf("[[a·b]] = %v", rel.Sorted())
	}
	rel2 := evalPairs(t, g, "a|c")
	if rel2.Len() != 3 || !rel2.Has(tt, s) {
		t.Fatalf("[[a∪c]] = %v", rel2.Sorted())
	}
}

func TestFigure1DataTests(t *testing.T) {
	g := diamond(t)
	s, tt := idx(t, g, "s"), idx(t, g, "t")
	l := idx(t, g, "l")
	// (a b)= : s to t with equal values 1 = 1.
	rel := evalPairs(t, g, "(a b)=")
	if rel.Len() != 1 || !rel.Has(s, tt) {
		t.Fatalf("[[(a·b)=]] = %v", rel.Sorted())
	}
	// a≠ : s(1) to l(2) and r(3), both different.
	rel2 := evalPairs(t, g, "a!=")
	if rel2.Len() != 2 || !rel2.Has(s, l) {
		t.Fatalf("[[a≠]] = %v", rel2.Sorted())
	}
	// (a b)!= is empty.
	if evalPairs(t, g, "(a b)!=").Len() != 0 {
		t.Fatal("[[(a·b)≠]] should be empty")
	}
}

func TestFigure1FilterAndExists(t *testing.T) {
	g := diamond(t)
	s := idx(t, g, "s")
	// [⟨a⟩]: identity on nodes with an outgoing a — only s.
	rel := evalPairs(t, g, "[<a>]")
	if rel.Len() != 1 || !rel.Has(s, s) {
		t.Fatalf("[[[⟨a⟩]]] = %v", rel.Sorted())
	}
	// ⟨a·b⟩ as node expression.
	sat := EvalNode(g, MustParseNode("<a b>"), marked)
	if !sat[s] {
		t.Fatal("s should satisfy ⟨a·b⟩")
	}
	count := 0
	for _, b := range sat {
		if b {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("⟨a·b⟩ satisfied by %d nodes", count)
	}
}

func TestFigure1Booleans(t *testing.T) {
	g := diamond(t)
	// ¬⟨a⟩ ∧ ⟨b⟩ : nodes without outgoing a but with outgoing b = l, r.
	got := NodesSatisfying(g, MustParseNode("!<a> & <b>"), marked)
	want := []int{idx(t, g, "l"), idx(t, g, "r")}
	sort.Ints(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("¬⟨a⟩∧⟨b⟩ = %v, want %v", got, want)
	}
	// ⟨a⟩ ∨ ⟨c⟩ : s and t.
	got2 := NodesSatisfying(g, MustParseNode("<a> | <c>"), marked)
	want2 := []int{idx(t, g, "s"), idx(t, g, "t")}
	sort.Ints(want2)
	if !reflect.DeepEqual(got2, want2) {
		t.Fatalf("⟨a⟩∨⟨c⟩ = %v, want %v", got2, want2)
	}
}

func TestSatisfies(t *testing.T) {
	g := diamond(t)
	if !Satisfies(g, "s", MustParseNode("<a>"), marked) {
		t.Fatal("s satisfies ⟨a⟩")
	}
	if Satisfies(g, "l", MustParseNode("<a>"), marked) {
		t.Fatal("l does not satisfy ⟨a⟩")
	}
	if Satisfies(g, "missing", MustParseNode("<a>"), marked) {
		t.Fatal("missing node satisfies nothing")
	}
}

// Combined navigation: data equality through inverse steps, the pattern
// ϕ_δ uses: w_y · (w_y⁻ · w_z)=.
func TestInversePathDataTest(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("root", datagraph.V("r"))
	g.MustAddNode("y", datagraph.V("same"))
	g.MustAddNode("z", datagraph.V("same"))
	g.MustAddEdge("root", "a", "y")
	g.MustAddEdge("root", "b", "z")
	// a (a- b)= : from root to z via y with δ(y)=δ(z).
	rel := evalPairs(t, g, "a (a- b)=")
	if rel.Len() != 1 || !rel.Has(idx(t, g, "root"), idx(t, g, "z")) {
		t.Fatalf("rel = %v", rel.Sorted())
	}
	// Distinct values: empty.
	g2 := datagraph.New()
	g2.MustAddNode("root", datagraph.V("r"))
	g2.MustAddNode("y", datagraph.V("v1"))
	g2.MustAddNode("z", datagraph.V("v2"))
	g2.MustAddEdge("root", "a", "y")
	g2.MustAddEdge("root", "b", "z")
	if EvalPath(g2, MustParsePath("a (a- b)="), marked).Len() != 0 {
		t.Fatal("distinct values should yield empty relation")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"a", "a-", "a*", "a-*", "a b", "a|b", "a=", "a!=", "(a b)=",
		"[<a>]", "a [<b>] c", "()",
	} {
		p := MustParsePath(s)
		p2 := MustParsePath(p.String())
		if p.String() != p2.String() {
			t.Errorf("path round trip %q -> %q -> %q", s, p.String(), p2.String())
		}
	}
	for _, s := range []string{
		"<a>", "!<a>", "<a> & <b>", "<a> | !<b> & <c>", "(<a> | <b>) & <c>",
		"<a (a- b)=>",
	} {
		n := MustParseNode(s)
		n2 := MustParseNode(n.String())
		if n.String() != n2.String() {
			t.Errorf("node round trip %q -> %q -> %q", s, n.String(), n2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "(", "(a", "[<a>", "a |", "<a", "!"} {
		if _, err := ParsePath(bad); err == nil {
			if _, err2 := ParseNode(bad); err2 == nil {
				t.Errorf("both parsers accepted %q", bad)
			}
		}
	}
	if _, err := ParseNode("a"); err == nil {
		t.Error("bare label is not a node expression")
	}
	if _, err := ParsePath("<a>"); err == nil {
		t.Error("node expression is not a path expression")
	}
}

func TestUsesOnlyCore(t *testing.T) {
	if !UsesOnlyCore(MustParsePath("a [<b- c=>] (d|e)!=")) {
		t.Fatal("core expression misclassified")
	}
}

// chainTree builds root -x-> mid -y-> leaf with distinct values.
func chainTree(t *testing.T) *datagraph.Graph {
	t.Helper()
	g := datagraph.New()
	g.MustAddNode("root", datagraph.V("v0"))
	g.MustAddNode("mid", datagraph.V("v1"))
	g.MustAddNode("leaf", datagraph.V("v2"))
	g.MustAddEdge("root", "x", "mid")
	g.MustAddEdge("mid", "y", "leaf")
	return g
}

func TestValidateTree(t *testing.T) {
	g := chainTree(t)
	if err := ValidateTree(g, "root"); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTree(g, "mid"); err == nil {
		t.Fatal("mid is not the root")
	}
	g.MustAddEdge("leaf", "z", "root")
	if err := ValidateTree(g, "root"); err == nil {
		t.Fatal("cycle should invalidate tree")
	}
}

func TestNonRepeatingProperty(t *testing.T) {
	g := chainTree(t)
	if !HasNonRepeatingProperty(g) {
		t.Fatal("chain has the non-repeating property")
	}
	g.MustAddNode("extra", datagraph.V("v3"))
	g.MustAddEdge("root", "x", "extra") // second x-child of root
	if HasNonRepeatingProperty(g) {
		t.Fatal("duplicate child label should violate the property")
	}
}

func TestPhiGPinsTopology(t *testing.T) {
	g := chainTree(t)
	phi, err := PhiG(g, "root")
	if err != nil {
		t.Fatal(err)
	}
	// G itself satisfies ϕ_G at the root.
	if !Satisfies(g, "root", phi, marked) {
		t.Fatal("G must satisfy ϕ_G at its root")
	}
	// Not at other nodes.
	if Satisfies(g, "mid", phi, marked) {
		t.Fatal("mid must not satisfy ϕ_G")
	}
	// A graph missing the y-edge fails.
	h := datagraph.New()
	h.MustAddNode("r", datagraph.V("w0"))
	h.MustAddNode("m", datagraph.V("w1"))
	h.MustAddEdge("r", "x", "m")
	if Satisfies(h, "r", phi, marked) {
		t.Fatal("incomplete topology must fail ϕ_G")
	}
	// A larger graph containing the pattern satisfies it.
	h.MustAddNode("l", datagraph.V("w2"))
	h.MustAddEdge("m", "y", "l")
	h.MustAddNode("noise", datagraph.V("w3"))
	h.MustAddEdge("noise", "q", "r")
	if !Satisfies(h, "r", phi, marked) {
		t.Fatal("supergraph must satisfy ϕ_G")
	}
}

func TestPhiDeltaForcesDistinctValues(t *testing.T) {
	g := chainTree(t)
	phiD, err := PhiDelta(g, "root")
	if err != nil {
		t.Fatal(err)
	}
	if !Satisfies(g, "root", phiD, marked) {
		t.Fatal("all-distinct tree must satisfy ϕ_δ")
	}
	// Merge two values: ϕ_δ fails.
	h := datagraph.New()
	h.MustAddNode("root", datagraph.V("v0"))
	h.MustAddNode("mid", datagraph.V("v0")) // duplicate value
	h.MustAddNode("leaf", datagraph.V("v2"))
	h.MustAddEdge("root", "x", "mid")
	h.MustAddEdge("mid", "y", "leaf")
	if Satisfies(h, "root", phiD, marked) {
		t.Fatal("duplicate values must violate ϕ_δ")
	}
}

func TestPhiPrimeSatisfiability(t *testing.T) {
	g := chainTree(t)
	// ϕ = ⟨x y⟩: the root always satisfies it in any G′ ⊇ G, so
	// ϕ′ = ϕ_G ∧ ϕ_δ ∧ ¬ϕ is unsatisfiable at G-like roots; our bounded
	// search over supergraph candidates of G should find nothing, whereas
	// with ϕ = ⟨x x⟩ (absent from G and avoidable) ϕ′ is satisfied by G
	// itself.
	phiHeld := MustParseNode("<x y>")
	phiPrime, err := PhiPrime(g, "root", phiHeld)
	if err != nil {
		t.Fatal(err)
	}
	if Satisfies(g, "root", phiPrime, marked) {
		t.Fatal("G itself cannot avoid ⟨x y⟩")
	}
	phiAvoidable := MustParseNode("<x x>")
	phiPrime2, err := PhiPrime(g, "root", phiAvoidable)
	if err != nil {
		t.Fatal(err)
	}
	if !Satisfies(g, "root", phiPrime2, marked) {
		t.Fatal("G avoids ⟨x x⟩ and satisfies ϕ_G ∧ ϕ_δ")
	}
}

func TestSearchModel(t *testing.T) {
	// ⟨a=⟩ needs an a-self-loop or a-edge between equal values.
	m, ok := SearchModel(MustParseNode("<a=>"), 2, []string{"a"}, 100000)
	if !ok {
		t.Fatal("model for ⟨a=⟩ should exist")
	}
	if !anyTrue(EvalNode(m, MustParseNode("<a=>"), marked)) {
		t.Fatal("returned model does not satisfy the formula")
	}
	// ⟨a≠⟩ ∧ ¬⟨a⟩ is unsatisfiable: ⟨a≠⟩ implies an outgoing a-edge.
	if _, ok := SearchModel(MustParseNode("<a!=> & !<a>"), 2, []string{"a"}, 100000); ok {
		t.Fatal("contradictory formula should have no model")
	}
	// Needs two distinct values: ⟨a!=⟩.
	m2, ok := SearchModel(MustParseNode("<a!=>"), 2, []string{"a"}, 100000)
	if !ok {
		t.Fatal("model for ⟨a≠⟩ should exist")
	}
	if m2.NumNodes() < 2 {
		t.Fatal("⟨a≠⟩ needs two nodes with distinct values")
	}
}

func TestContainedWithin(t *testing.T) {
	labels := []string{"a"}
	// ⟨a=⟩ ⊑ ⟨a⟩: an equal-valued a-step is an a-step.
	if ok, counter := ContainedWithin(
		MustParseNode("<a=>"), MustParseNode("<a>"), 2, labels, 100000); !ok {
		t.Fatalf("⟨a=⟩ ⊑ ⟨a⟩ refuted by:\n%s", counter)
	}
	// ⟨a⟩ ⋢ ⟨a=⟩: a counterexample needs two distinct values.
	ok, counter := ContainedWithin(
		MustParseNode("<a>"), MustParseNode("<a=>"), 2, labels, 100000)
	if ok {
		t.Fatal("⟨a⟩ ⊑ ⟨a=⟩ should be refutable")
	}
	if counter == nil {
		t.Fatal("refutation must come with a countermodel")
	}
	// The countermodel really separates.
	sepA := NodesSatisfying(counter, MustParseNode("<a>"), marked)
	sepEq := NodesSatisfying(counter, MustParseNode("<a=>"), marked)
	if len(sepA) == 0 {
		t.Fatal("countermodel does not satisfy the left side")
	}
	if len(sepEq) >= len(sepA) {
		t.Fatalf("countermodel does not separate: %v vs %v", sepA, sepEq)
	}
}

func TestSQLNullsInGXPath(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("x", datagraph.Null())
	g.MustAddNode("y", datagraph.Null())
	g.MustAddEdge("x", "a", "y")
	// Under SQL semantics neither = nor ≠ holds between nulls.
	if EvalPath(g, MustParsePath("a="), datagraph.SQLNulls).Len() != 0 {
		t.Fatal("null = null must fail under SQL mode")
	}
	if EvalPath(g, MustParsePath("a!="), datagraph.SQLNulls).Len() != 0 {
		t.Fatal("null ≠ null must fail under SQL mode")
	}
	// Under marked semantics nulls are equal constants.
	if EvalPath(g, MustParsePath("a="), marked).Len() != 1 {
		t.Fatal("null = null holds under marked mode")
	}
}
