// Package ree implements regular expressions with equality (REE, Section 3
// of Francis & Libkin PODS'17):
//
//	e := ε | a | e+e | e·e | e⁺ | e= | e≠
//
// e= (resp. e≠) accepts the data paths of e whose first and last data values
// are equal (resp. different). The package provides a parser, compilation to
// register automata (package ra) for graph evaluation, a direct
// dynamic-programming membership matcher used as an ablation comparator, and
// the structural subclasses the paper singles out: paths with tests
// (e := a | e·e | e= | e≠) and REE= (no inequality, Section 8).
//
// Concrete syntax: the rex syntax plus postfix '=' and '!=', e.g.
// ".* (.+)= .*" is the paper's Σ*·(Σ⁺)=·Σ* ("some data value repeats"), and
// "(a (b c)=)!=" is the paper's paths-with-tests example.
package ree

import "strings"

// Expr is the AST of a regular expression with equality.
type Expr interface {
	String() string
	isExpr()
}

// Eps is ε: single-value data paths {d | d ∈ D}.
type Eps struct{}

// Lit is a letter a: data paths {d a d′}.
type Lit struct{ Label string }

// Any matches any single letter (convenience for the paper's Σ).
type Any struct{}

// Concat is e·e′ (data-path concatenation, sharing the junction value).
type Concat struct{ Factors []Expr }

// Union is e+e′.
type Union struct{ Alts []Expr }

// Plus is e⁺.
type Plus struct{ Inner Expr }

// Star is e* = ε + e⁺ (convenience).
type Star struct{ Inner Expr }

// Opt is e? = ε + e (convenience).
type Opt struct{ Inner Expr }

// Eq is e=: members of L(e) whose first and last data values are equal.
type Eq struct{ Inner Expr }

// Neq is e≠: members of L(e) whose first and last data values differ.
type Neq struct{ Inner Expr }

func (Eps) isExpr()    {}
func (Lit) isExpr()    {}
func (Any) isExpr()    {}
func (Concat) isExpr() {}
func (Union) isExpr()  {}
func (Plus) isExpr()   {}
func (Star) isExpr()   {}
func (Opt) isExpr()    {}
func (Eq) isExpr()     {}
func (Neq) isExpr()    {}

func (Eps) String() string   { return "()" }
func (l Lit) String() string { return l.Label }
func (Any) String() string   { return "." }

func (c Concat) String() string {
	parts := make([]string, len(c.Factors))
	for i, f := range c.Factors {
		s := f.String()
		if _, isUnion := f.(Union); isUnion {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, " ")
}

func (u Union) String() string {
	parts := make([]string, len(u.Alts))
	for i, a := range u.Alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, "|")
}

func groupString(e Expr) string {
	switch e.(type) {
	case Lit, Any, Eps:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

func (p Plus) String() string { return groupString(p.Inner) + "+" }
func (s Star) String() string { return groupString(s.Inner) + "*" }
func (o Opt) String() string  { return groupString(o.Inner) + "?" }
func (e Eq) String() string   { return groupString(e.Inner) + "=" }
func (n Neq) String() string  { return groupString(n.Inner) + "!=" }

// IsEqualityOnly reports whether the expression is in REE= (Section 8): no
// e≠ subexpression anywhere.
func IsEqualityOnly(e Expr) bool {
	switch t := e.(type) {
	case Eps, Lit, Any:
		return true
	case Concat:
		for _, f := range t.Factors {
			if !IsEqualityOnly(f) {
				return false
			}
		}
		return true
	case Union:
		for _, a := range t.Alts {
			if !IsEqualityOnly(a) {
				return false
			}
		}
		return true
	case Plus:
		return IsEqualityOnly(t.Inner)
	case Star:
		return IsEqualityOnly(t.Inner)
	case Opt:
		return IsEqualityOnly(t.Inner)
	case Eq:
		return IsEqualityOnly(t.Inner)
	case Neq:
		return false
	default:
		return false
	}
}

// CountNeq returns the number of e≠ subexpressions.
func CountNeq(e Expr) int {
	switch t := e.(type) {
	case Concat:
		n := 0
		for _, f := range t.Factors {
			n += CountNeq(f)
		}
		return n
	case Union:
		n := 0
		for _, a := range t.Alts {
			n += CountNeq(a)
		}
		return n
	case Plus:
		return CountNeq(t.Inner)
	case Star:
		return CountNeq(t.Inner)
	case Opt:
		return CountNeq(t.Inner)
	case Eq:
		return CountNeq(t.Inner)
	case Neq:
		return 1 + CountNeq(t.Inner)
	default:
		return 0
	}
}

// PosTest is a test over positions of a path-with-tests: the data values at
// positions Start and End (0-based, in the underlying word of length n with
// n+1 positions) must be equal (Neq=false) or different (Neq=true).
type PosTest struct {
	Start, End int
	Neq        bool
}

// FlattenPathWithTests checks that e is a path with tests
// (e := a | e·e | e= | e≠, Section 3) and returns its underlying label word
// together with the position tests. The certain-answer algorithm of
// Proposition 4 consumes this flat form.
func FlattenPathWithTests(e Expr) (labels []string, tests []PosTest, ok bool) {
	labels, tests, n, ok := flattenPWT(e, 0)
	_ = n
	return labels, tests, ok
}

func flattenPWT(e Expr, offset int) (labels []string, tests []PosTest, length int, ok bool) {
	switch t := e.(type) {
	case Lit:
		return []string{t.Label}, nil, 1, true
	case Concat:
		var allLabels []string
		var allTests []PosTest
		pos := offset
		for _, f := range t.Factors {
			ls, ts, n, fok := flattenPWT(f, pos)
			if !fok {
				return nil, nil, 0, false
			}
			allLabels = append(allLabels, ls...)
			allTests = append(allTests, ts...)
			pos += n
		}
		return allLabels, allTests, pos - offset, true
	case Eq:
		ls, ts, n, fok := flattenPWT(t.Inner, offset)
		if !fok {
			return nil, nil, 0, false
		}
		return ls, append(ts, PosTest{Start: offset, End: offset + n}), n, true
	case Neq:
		ls, ts, n, fok := flattenPWT(t.Inner, offset)
		if !fok {
			return nil, nil, 0, false
		}
		return ls, append(ts, PosTest{Start: offset, End: offset + n, Neq: true}), n, true
	default:
		return nil, nil, 0, false
	}
}

// IsPathWithTests reports whether e is in the paths-with-tests fragment.
func IsPathWithTests(e Expr) bool {
	_, _, ok := FlattenPathWithTests(e)
	return ok
}

// MaxEqDepth returns the maximum nesting depth of =/≠ operators; this equals
// the number of registers the compiled automaton uses.
func MaxEqDepth(e Expr) int {
	switch t := e.(type) {
	case Concat:
		m := 0
		for _, f := range t.Factors {
			if d := MaxEqDepth(f); d > m {
				m = d
			}
		}
		return m
	case Union:
		m := 0
		for _, a := range t.Alts {
			if d := MaxEqDepth(a); d > m {
				m = d
			}
		}
		return m
	case Plus:
		return MaxEqDepth(t.Inner)
	case Star:
		return MaxEqDepth(t.Inner)
	case Opt:
		return MaxEqDepth(t.Inner)
	case Eq:
		return 1 + MaxEqDepth(t.Inner)
	case Neq:
		return 1 + MaxEqDepth(t.Inner)
	default:
		return 0
	}
}
