package ree

import (
	"reflect"
	"testing"

	"repro/internal/datagraph"
)

func dp(vals []string, labels ...string) datagraph.DataPath {
	vv := make([]datagraph.Value, len(vals))
	for i, s := range vals {
		vv[i] = datagraph.V(s)
	}
	return datagraph.NewDataPath(vv, labels)
}

func matchBoth(t *testing.T, expr string, w datagraph.DataPath) bool {
	t.Helper()
	e := MustParse(expr)
	auto := New(e).Match(w, datagraph.MarkedNulls)
	direct := MatchDirect(e, w, datagraph.MarkedNulls)
	if auto != direct {
		t.Fatalf("matchers disagree on %q / %v: automaton=%v direct=%v", expr, w, auto, direct)
	}
	return auto
}

func TestBasicMembership(t *testing.T) {
	cases := []struct {
		expr string
		w    datagraph.DataPath
		want bool
	}{
		{"()", dp([]string{"1"}), true},
		{"()", dp([]string{"1", "2"}, "a"), false},
		{"a", dp([]string{"1", "2"}, "a"), true},
		{"a", dp([]string{"1", "2"}, "b"), false},
		{"a b", dp([]string{"1", "2", "3"}, "a", "b"), true},
		{"a|b", dp([]string{"1", "2"}, "b"), true},
		{"a+", dp([]string{"1", "2", "3"}, "a", "a"), true},
		{"a+", dp([]string{"1"}), false},
		{"a*", dp([]string{"1"}), true},
		{"a?", dp([]string{"1"}), true},
		{"a?", dp([]string{"1", "2"}, "a"), true},
		{".", dp([]string{"1", "2"}, "zz"), true},
	}
	for _, c := range cases {
		if got := matchBoth(t, c.expr, c.w); got != c.want {
			t.Errorf("match(%q, %v) = %v, want %v", c.expr, c.w, got, c.want)
		}
	}
}

func TestEqualityTests(t *testing.T) {
	cases := []struct {
		expr string
		w    datagraph.DataPath
		want bool
	}{
		{"a=", dp([]string{"1", "1"}, "a"), true},
		{"a=", dp([]string{"1", "2"}, "a"), false},
		{"a!=", dp([]string{"1", "2"}, "a"), true},
		{"a!=", dp([]string{"1", "1"}, "a"), false},
		// (a b)= over three values: first == last.
		{"(a b)=", dp([]string{"7", "x", "7"}, "a", "b"), true},
		{"(a b)=", dp([]string{"7", "x", "8"}, "a", "b"), false},
		// Paper's example: (a(bc)=)≠ matches d1 a d2 b d3 c d2 with d1≠d2.
		{"(a (b c)=)!=", dp([]string{"1", "2", "3", "2"}, "a", "b", "c"), true},
		{"(a (b c)=)!=", dp([]string{"2", "2", "3", "2"}, "a", "b", "c"), false},
		{"(a (b c)=)!=", dp([]string{"1", "2", "3", "4"}, "a", "b", "c"), false},
		// Paper's example: Σ*·(Σ+)=·Σ* — some data value repeats.
		{".* (.+)= .*", dp([]string{"1", "2", "3", "1"}, "a", "b", "c"), true},
		{".* (.+)= .*", dp([]string{"1", "2", "2", "3"}, "a", "b", "c"), true},
		{".* (.+)= .*", dp([]string{"1", "2", "3", "4"}, "a", "b", "c"), false},
		// ε with equality: (())= is trivially satisfied (d = d).
		{"()=", dp([]string{"5"}), true},
		{"()!=", dp([]string{"5"}), false},
	}
	for _, c := range cases {
		if got := matchBoth(t, c.expr, c.w); got != c.want {
			t.Errorf("match(%q, %v) = %v, want %v", c.expr, c.w, got, c.want)
		}
	}
}

func TestPlusWithEquality(t *testing.T) {
	// (a=)+: each a-step has equal endpoints.
	if !matchBoth(t, "(a=)+", dp([]string{"1", "1", "1"}, "a", "a")) {
		t.Fatal("(a=)+ should accept 1 a 1 a 1")
	}
	if matchBoth(t, "(a=)+", dp([]string{"1", "1", "2"}, "a", "a")) {
		t.Fatal("(a=)+ must reject 1 a 1 a 2")
	}
	// (a+)= only needs global endpoints equal.
	if !matchBoth(t, "(a+)=", dp([]string{"1", "9", "1"}, "a", "a")) {
		t.Fatal("(a+)= should accept 1 a 9 a 1")
	}
}

func TestNestedRegistersReuse(t *testing.T) {
	// ((a= ) (b=))= : inner tests share depth-1 register sequentially.
	e := MustParse("(a= b=)=")
	if MaxEqDepth(e) != 2 {
		t.Fatalf("depth = %d, want 2", MaxEqDepth(e))
	}
	q := New(e)
	if q.Automaton().NumRegs != 2 {
		t.Fatalf("registers = %d, want 2", q.Automaton().NumRegs)
	}
	// 5 a 5 b 5: inner a= (5=5) ok, inner b= (5=5) ok, outer (5=5) ok.
	if !matchBoth(t, "(a= b=)=", dp([]string{"5", "5", "5"}, "a", "b")) {
		t.Fatal("should accept all-5s")
	}
	// 5 a 5 b 6: inner b= fails.
	if matchBoth(t, "(a= b=)=", dp([]string{"5", "5", "6"}, "a", "b")) {
		t.Fatal("must reject when inner b= fails")
	}
}

func TestSQLNullsInQueries(t *testing.T) {
	nullMid := datagraph.NewDataPath(
		[]datagraph.Value{datagraph.V("1"), datagraph.Null(), datagraph.V("1")},
		[]string{"a", "b"})
	q := MustParseQuery("(a b)=")
	// Endpoints are constants 1,1: holds in both modes.
	if !q.Match(nullMid, datagraph.SQLNulls) || !q.Match(nullMid, datagraph.MarkedNulls) {
		t.Fatal("(a b)= over constants should hold despite null midpoint")
	}
	nullEnd := datagraph.NewDataPath(
		[]datagraph.Value{datagraph.V("1"), datagraph.Null()},
		[]string{"a"})
	qe := MustParseQuery("a=")
	qn := MustParseQuery("a!=")
	if qe.Match(nullEnd, datagraph.SQLNulls) || qn.Match(nullEnd, datagraph.SQLNulls) {
		t.Fatal("comparisons with null must fail under SQL semantics")
	}
	if qn.Match(nullEnd, datagraph.MarkedNulls) != true {
		t.Fatal("1 ≠ null under marked semantics")
	}
}

func TestGraphEvaluation(t *testing.T) {
	// Cycle with values where only one pair matches (knows+)=.
	g := datagraph.New()
	g.MustAddNode("a", datagraph.V("1"))
	g.MustAddNode("b", datagraph.V("2"))
	g.MustAddNode("c", datagraph.V("1"))
	g.MustAddEdge("a", "knows", "b")
	g.MustAddEdge("b", "knows", "c")
	g.MustAddEdge("c", "knows", "a")
	q := MustParseQuery("(knows knows)=")
	got := q.Eval(g, datagraph.MarkedNulls)
	ai, _ := g.IndexOf("a")
	ci, _ := g.IndexOf("c")
	// a -knows-> b -knows-> c : values 1,2,1 — equal endpoints. Also
	// c -..-> b? c knows a knows b: 1,1,2 no. b knows c knows a: 2,1,1 no.
	if got.Len() != 1 || !got.Has(ai, ci) {
		t.Fatalf("Eval = %v", got.Sorted())
	}
	// EvalFrom agrees.
	vs := q.EvalFrom(g, ai, datagraph.MarkedNulls)
	if len(vs) != 1 || vs[0] != ci {
		t.Fatalf("EvalFrom = %v", vs)
	}
}

func TestClassification(t *testing.T) {
	if !IsEqualityOnly(MustParse("a= (b c)= d+")) {
		t.Fatal("equality-only expression misclassified")
	}
	if IsEqualityOnly(MustParse("a= b!=")) {
		t.Fatal("expression with != accepted as REE=")
	}
	if CountNeq(MustParse("(a!= b!=)!= | c=")) != 3 {
		t.Fatal("CountNeq wrong")
	}
	if CountNeq(MustParse("a b c")) != 0 {
		t.Fatal("CountNeq on plain word")
	}
}

func TestFlattenPathWithTests(t *testing.T) {
	labels, tests, ok := FlattenPathWithTests(MustParse("(a (b c)=)!="))
	if !ok {
		t.Fatal("should be a path with tests")
	}
	if !reflect.DeepEqual(labels, []string{"a", "b", "c"}) {
		t.Fatalf("labels = %v", labels)
	}
	want := []PosTest{{Start: 1, End: 3, Neq: false}, {Start: 0, End: 3, Neq: true}}
	if !reflect.DeepEqual(tests, want) {
		t.Fatalf("tests = %v, want %v", tests, want)
	}
	for _, not := range []string{"a*", "a|b", "a?", "()", ".", "(a|b)="} {
		if IsPathWithTests(MustParse(not)) {
			t.Errorf("%q misclassified as path-with-tests", not)
		}
	}
	if !IsPathWithTests(MustParse("a b= (c d)!=")) {
		t.Fatal("valid path-with-tests rejected")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"a", "a=", "a!=", "(a b)=", "(a (b c)=)!=", ".* (.+)= .*",
		"a|b=", "(a|b)=", "a+ b?", "()=",
	} {
		e := MustParse(s)
		e2 := MustParse(e.String())
		if e.String() != e2.String() {
			t.Errorf("round trip %q -> %q -> %q", s, e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "=", "!=", "!x", "a !", "(a", "a)", "|a", "a^"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// Cross-validation of the two matchers on a batch of expressions and paths.
func TestMatchersAgreeExhaustively(t *testing.T) {
	exprs := []string{
		"a", "a=", "a!=", "a b", "(a b)=", "(a b)!=", "a+", "(a=)+", "(a+)=",
		"a*", "(a*)=", "a|b", "(a|b)=", ".* (.+)= .*", "(a (b a)=)!=",
		"(a= a=)=", "a? b", "(a? b)=",
	}
	vals := []string{"1", "2", "1", "3", "1"}
	labs := [][]string{
		{"a", "a", "a", "a"},
		{"a", "b", "a", "b"},
		{"b", "a", "b", "a"},
	}
	for _, expr := range exprs {
		e := MustParse(expr)
		q := New(e)
		for _, ls := range labs {
			for l := 0; l <= len(ls); l++ {
				w := dp(vals[:l+1], ls[:l]...)
				a := q.Match(w, datagraph.MarkedNulls)
				d := MatchDirect(e, w, datagraph.MarkedNulls)
				if a != d {
					t.Errorf("disagreement: %q on %v: automaton=%v direct=%v", expr, w, a, d)
				}
			}
		}
	}
}

func TestMaxEqDepth(t *testing.T) {
	cases := map[string]int{
		"a":              0,
		"a=":             1,
		"(a= b=)":        1,
		"((a=)= b)!=":    3,
		"(a (b c)=)!= d": 2,
	}
	for s, want := range cases {
		if got := MaxEqDepth(MustParse(s)); got != want {
			t.Errorf("MaxEqDepth(%q) = %d, want %d", s, got, want)
		}
	}
}
