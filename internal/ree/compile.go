package ree

import (
	"fmt"

	"repro/internal/datagraph"
	"repro/internal/ra"
)

// Query is a compiled REE query: the AST plus its register automaton. REE
// queries are the equality RPQs of the paper.
type Query struct {
	expr Expr
	auto *ra.Automaton
}

// New compiles an REE expression into a query.
func New(e Expr) *Query {
	b := &ra.Builder{}
	f := compile(b, e, 0)
	return &Query{expr: e, auto: b.Finish(f.start, f.accept)}
}

// ParseQuery parses and compiles the concrete syntax.
func ParseQuery(s string) (*Query, error) {
	e, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return New(e), nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) *Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// Expr returns the AST.
func (q *Query) Expr() Expr { return q.expr }

// Automaton exposes the compiled register automaton (for experiments).
func (q *Query) Automaton() *ra.Automaton { return q.auto }

// String renders the query in concrete syntax.
func (q *Query) String() string { return q.expr.String() }

// Match reports whether the data path is in L(e), via the register
// automaton.
func (q *Query) Match(w datagraph.DataPath, mode datagraph.CompareMode) bool {
	return q.auto.MatchDataPath(w, mode)
}

// Eval returns the pairs (v, v′) connected by a path π with δ(π) ∈ L(e).
func (q *Query) Eval(g *datagraph.Graph, mode datagraph.CompareMode) *datagraph.PairSet {
	return q.auto.Eval(g, mode)
}

// EvalFrom returns the targets reachable from node index u by a matching
// path.
func (q *Query) EvalFrom(g *datagraph.Graph, u int, mode datagraph.CompareMode) []int {
	return q.auto.EvalFrom(g, u, mode)
}

// EvalRange evaluates from every start node in [lo, hi) over the graph's
// interned snapshot, sharing scratch across the range; see
// ra.Automaton.EvalRange.
func (q *Query) EvalRange(g *datagraph.Graph, lo, hi int, mode datagraph.CompareMode, emit func(u, v int)) {
	q.auto.EvalRange(g, lo, hi, mode, emit)
}

// StartLabels returns a superset of the labels able to begin a nonempty
// match and whether it is exhaustive; see ra.Automaton.StartLabels.
func (q *Query) StartLabels() ([]string, bool) { return q.auto.StartLabels() }

// AcceptsEmptyPath reports whether the query may accept a single-node path;
// see ra.Automaton.AcceptsEmptyPath.
func (q *Query) AcceptsEmptyPath() bool { return q.auto.AcceptsEmptyPath() }

type frag struct{ start, accept int }

// compile translates the expression into automaton fragments. The register
// for an =/≠ test is its nesting depth: sibling tests reuse registers
// (sound, because fragments execute sequentially), so NumRegs = MaxEqDepth.
func compile(b *ra.Builder, e Expr, depth int) frag {
	switch t := e.(type) {
	case Eps:
		s, a := b.State(), b.State()
		b.Eps(s, a, ra.True{}, nil)
		return frag{s, a}
	case Lit:
		s, a := b.State(), b.State()
		b.Letter(s, a, t.Label, false, ra.True{}, nil)
		return frag{s, a}
	case Any:
		s, a := b.State(), b.State()
		b.Letter(s, a, "", true, ra.True{}, nil)
		return frag{s, a}
	case Concat:
		if len(t.Factors) == 0 {
			return compile(b, Eps{}, depth)
		}
		f0 := compile(b, t.Factors[0], depth)
		start, accept := f0.start, f0.accept
		for _, fct := range t.Factors[1:] {
			nf := compile(b, fct, depth)
			b.Eps(accept, nf.start, ra.True{}, nil)
			accept = nf.accept
		}
		return frag{start, accept}
	case Union:
		s, a := b.State(), b.State()
		for _, alt := range t.Alts {
			f := compile(b, alt, depth)
			b.Eps(s, f.start, ra.True{}, nil)
			b.Eps(f.accept, a, ra.True{}, nil)
		}
		return frag{s, a}
	case Plus:
		s, a := b.State(), b.State()
		f := compile(b, t.Inner, depth)
		b.Eps(s, f.start, ra.True{}, nil)
		b.Eps(f.accept, f.start, ra.True{}, nil)
		b.Eps(f.accept, a, ra.True{}, nil)
		return frag{s, a}
	case Star:
		s, a := b.State(), b.State()
		f := compile(b, t.Inner, depth)
		b.Eps(s, a, ra.True{}, nil)
		b.Eps(s, f.start, ra.True{}, nil)
		b.Eps(f.accept, f.start, ra.True{}, nil)
		b.Eps(f.accept, a, ra.True{}, nil)
		return frag{s, a}
	case Opt:
		s, a := b.State(), b.State()
		f := compile(b, t.Inner, depth)
		b.Eps(s, a, ra.True{}, nil)
		b.Eps(s, f.start, ra.True{}, nil)
		b.Eps(f.accept, a, ra.True{}, nil)
		return frag{s, a}
	case Eq:
		return compileTest(b, t.Inner, depth, false)
	case Neq:
		return compileTest(b, t.Inner, depth, true)
	default:
		panic(fmt.Sprintf("ree: unknown expression node %T", e))
	}
}

func compileTest(b *ra.Builder, inner Expr, depth int, neq bool) frag {
	s, a := b.State(), b.State()
	r := depth
	f := compile(b, inner, depth+1)
	// On entry, store the current (first) data value of the subpath.
	b.Eps(s, f.start, ra.True{}, []int{r})
	// On exit, compare the current (last) data value against the register.
	var cond ra.Cond = ra.Eq{Reg: r}
	if neq {
		cond = ra.Neq{Reg: r}
	}
	b.Eps(f.accept, a, cond, nil)
	return frag{s, a}
}
