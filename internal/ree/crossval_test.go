package ree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagraph"
)

// Cross-validation of the register-automaton graph evaluator against naive
// bounded path enumeration + the direct matcher. This closes the loop
// between the two REE semantics implementations end to end: graph product
// vs. per-path membership.

func randomGraph(seed int64, n, e int) *datagraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagraph.New()
	for i := 0; i < n; i++ {
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("n%d", i)), datagraph.V(fmt.Sprintf("v%d", rng.Intn(3))))
	}
	for k := 0; k < e; k++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		label := []string{"a", "b"}[rng.Intn(2)]
		g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("n%d", from)), label,
			datagraph.NodeID(fmt.Sprintf("n%d", to)))
	}
	return g
}

// enumerate finds all pairs connected by a path of length ≤ maxLen whose
// data path the direct matcher accepts.
func enumerate(g *datagraph.Graph, e Expr, maxLen int) *datagraph.PairSet {
	out := datagraph.NewPairSet()
	var walk func(start int, nodes []int, labels []string)
	walk = func(start int, nodes []int, labels []string) {
		vals := make([]datagraph.Value, len(nodes))
		for i, n := range nodes {
			vals[i] = g.Value(n)
		}
		w := datagraph.NewDataPath(vals, labels)
		if MatchDirect(e, w, datagraph.MarkedNulls) {
			out.Add(start, nodes[len(nodes)-1])
		}
		if len(labels) == maxLen {
			return
		}
		cur := nodes[len(nodes)-1]
		for _, he := range g.Out(cur) {
			walk(start, append(nodes, he.To), append(labels, he.Label))
		}
	}
	for u := 0; u < g.NumNodes(); u++ {
		walk(u, []int{u}, nil)
	}
	return out
}

func TestGraphEvalCrossValidation(t *testing.T) {
	// Expressions whose shortest matches fit in the enumeration bound, so
	// bounded enumeration is complete enough to compare: we check
	// enumerated ⊆ evaluated always, and equality for non-recursive
	// expressions (whose matches cannot exceed their fixed length).
	bounded := []string{"a", "a=", "a!=", "(a b)=", "(a b)!=", "a b a", "(a (b a)=)!="}
	recursive := []string{"(a=)+", ".* (.+)= .*", "(a|b)+"}
	const maxLen = 4
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(seed, 7, 12)
		for _, expr := range bounded {
			e := MustParse(expr)
			q := New(e)
			got := q.Eval(g, datagraph.MarkedNulls)
			naive := enumerate(g, e, maxLen)
			if !got.Equal(naive) {
				t.Fatalf("seed %d expr %q: eval %v vs enumeration %v",
					seed, expr, got.Sorted(), naive.Sorted())
			}
		}
		for _, expr := range recursive {
			e := MustParse(expr)
			q := New(e)
			got := q.Eval(g, datagraph.MarkedNulls)
			naive := enumerate(g, e, maxLen)
			if !naive.SubsetOf(got) {
				t.Fatalf("seed %d expr %q: evaluator missed enumerated pairs", seed, expr)
			}
		}
	}
}

// SQL-null agreement between graph evaluation and per-path matching on
// graphs containing null nodes.
func TestGraphEvalSQLNullCrossValidation(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("c1", datagraph.V("x"))
	g.MustAddNode("nu", datagraph.Null())
	g.MustAddNode("c2", datagraph.V("x"))
	g.MustAddEdge("c1", "a", "nu")
	g.MustAddEdge("nu", "a", "c2")
	g.MustAddEdge("c1", "b", "c2")
	for _, expr := range []string{"(a a)=", "a=", "(a a)!=", "b=", "(b)!="} {
		e := MustParse(expr)
		q := New(e)
		got := q.Eval(g, datagraph.SQLNulls)
		// Rebuild naive with SQL mode.
		naive := datagraph.NewPairSet()
		var walk func(start int, nodes []int, labels []string)
		walk = func(start int, nodes []int, labels []string) {
			vals := make([]datagraph.Value, len(nodes))
			for i, n := range nodes {
				vals[i] = g.Value(n)
			}
			if MatchDirect(e, datagraph.NewDataPath(vals, labels), datagraph.SQLNulls) {
				naive.Add(start, nodes[len(nodes)-1])
			}
			if len(labels) == 3 {
				return
			}
			for _, he := range g.Out(nodes[len(nodes)-1]) {
				walk(start, append(nodes, he.To), append(labels, he.Label))
			}
		}
		for u := 0; u < g.NumNodes(); u++ {
			walk(u, []int{u}, nil)
		}
		if !got.Equal(naive) {
			t.Fatalf("expr %q under SQL nulls: eval %v vs enumeration %v",
				expr, got.Sorted(), naive.Sorted())
		}
	}
}
