package ree

import (
	"testing"

	"repro/internal/datagraph"
)

func TestNonemptiness(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"a", true},
		{"a=", true},
		{"a!=", true},
		{"(a b)=", true},
		{"()=", true},     // d = d trivially
		{"()!=", false},   // d ≠ d unsatisfiable
		{"(a=)!=", false}, // endpoints equal and different
		{"(a!=)=", false}, // same contradiction
		{".* (.+)= .*", true},
		{"(a (b c)=)!=", true},
		{"a ()!= b", false}, // contradiction embedded in a concat
		{"a | ()!=", true},  // one satisfiable branch suffices
		{"(()!=)+", false},  // plus of empty is empty
		{"(()!=)*", true},   // star accepts the empty iteration
	}
	for _, c := range cases {
		q := MustParseQuery(c.expr)
		if got := q.Nonempty(); got != c.want {
			t.Errorf("Nonempty(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestWitnessDataPathVerifies(t *testing.T) {
	for _, expr := range []string{
		"a", "a=", "a!=", "(a b)=", ".* (.+)= .*", "(a (b c)=)!=", "(a= b=)=",
	} {
		q := MustParseQuery(expr)
		w, ok := q.WitnessDataPath()
		if !ok {
			t.Fatalf("%q should be nonempty", expr)
		}
		if !q.Match(w, datagraph.MarkedNulls) {
			t.Fatalf("%q: witness %v not in language", expr, w)
		}
		if !MatchDirect(q.Expr(), w, datagraph.MarkedNulls) {
			t.Fatalf("%q: direct matcher rejects witness %v", expr, w)
		}
	}
	if _, ok := MustParseQuery("()!=").WitnessDataPath(); ok {
		t.Fatal("empty language returned a witness")
	}
}
