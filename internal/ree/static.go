package ree

import "repro/internal/datagraph"

// Static analysis of equality RPQs. The paper (Section 3) cites that both
// nonemptiness and membership for regular expressions with equality are
// solvable in Ptime; nonemptiness is realised here through the symbolic
// register-automaton reachability of package ra (polynomial for the
// bounded register counts REE compilation produces: registers = nesting
// depth of =/≠).

// Nonempty reports whether L(e) contains at least one data path.
func (q *Query) Nonempty() bool { return q.auto.Nonempty() }

// WitnessDataPath returns a data path in L(e), if the language is nonempty.
func (q *Query) WitnessDataPath() (datagraph.DataPath, bool) {
	return q.auto.SomeDataPath()
}
