package ree

import "repro/internal/datagraph"

// MatchDirect reports whether the data path is in L(e) using interval
// dynamic programming over the expression tree, without going through the
// register automaton. It exists as an independent implementation for
// cross-validation and for the ablation experiment E12 (see DESIGN.md):
// the two matchers are checked against each other in tests.
func MatchDirect(e Expr, w datagraph.DataPath, mode datagraph.CompareMode) bool {
	m := &directMatcher{w: w, mode: mode, memo: make(map[memoKey]bool)}
	root := m.index(e)
	return m.match(root, 0, w.Len())
}

type nodeKind int

const (
	nEps nodeKind = iota
	nLit
	nAny
	nConcat
	nUnion
	nPlus
	nStar
	nOpt
	nEq
	nNeq
)

// inode is an indexed expression node; kids refer to other inodes by index,
// so subexpressions can serve as memo keys.
type inode struct {
	kind  nodeKind
	label string
	kids  []int
}

type memoKey struct {
	node int
	i, j int
}

type directMatcher struct {
	w     datagraph.DataPath
	mode  datagraph.CompareMode
	nodes []inode
	memo  map[memoKey]bool
}

// index flattens the AST into an indexed tree and returns the root index.
func (m *directMatcher) index(e Expr) int {
	add := func(n inode) int {
		m.nodes = append(m.nodes, n)
		return len(m.nodes) - 1
	}
	switch t := e.(type) {
	case Eps:
		return add(inode{kind: nEps})
	case Lit:
		return add(inode{kind: nLit, label: t.Label})
	case Any:
		return add(inode{kind: nAny})
	case Concat:
		kids := make([]int, len(t.Factors))
		for i, f := range t.Factors {
			kids[i] = m.index(f)
		}
		return add(inode{kind: nConcat, kids: kids})
	case Union:
		kids := make([]int, len(t.Alts))
		for i, a := range t.Alts {
			kids[i] = m.index(a)
		}
		return add(inode{kind: nUnion, kids: kids})
	case Plus:
		return add(inode{kind: nPlus, kids: []int{m.index(t.Inner)}})
	case Star:
		return add(inode{kind: nStar, kids: []int{m.index(t.Inner)}})
	case Opt:
		return add(inode{kind: nOpt, kids: []int{m.index(t.Inner)}})
	case Eq:
		return add(inode{kind: nEq, kids: []int{m.index(t.Inner)}})
	case Neq:
		return add(inode{kind: nNeq, kids: []int{m.index(t.Inner)}})
	default:
		panic("ree: unknown expression node")
	}
}

// match reports whether the subpath spanning positions [i, j] matches the
// node. Positions index data values: the subpath has labels w.Labels[i:j].
func (m *directMatcher) match(id, i, j int) bool {
	key := memoKey{id, i, j}
	if v, ok := m.memo[key]; ok {
		return v
	}
	n := m.nodes[id]
	var v bool
	switch n.kind {
	case nEps:
		v = i == j
	case nLit:
		v = j == i+1 && m.w.Labels[i] == n.label
	case nAny:
		v = j == i+1
	case nConcat:
		v = m.concatMatch(n.kids, i, j)
	case nUnion:
		for _, k := range n.kids {
			if m.match(k, i, j) {
				v = true
				break
			}
		}
	case nPlus:
		v = m.plusMatch(n.kids[0], i, j)
	case nStar:
		v = i == j || m.plusMatch(n.kids[0], i, j)
	case nOpt:
		v = i == j || m.match(n.kids[0], i, j)
	case nEq:
		v = m.match(n.kids[0], i, j) && m.mode.Eq(m.w.Values[i], m.w.Values[j])
	case nNeq:
		v = m.match(n.kids[0], i, j) && m.mode.Neq(m.w.Values[i], m.w.Values[j])
	}
	m.memo[key] = v
	return v
}

// targets returns all k ∈ [i, limit] such that [i, k] matches the node.
func (m *directMatcher) targets(id, i, limit int) []int {
	var out []int
	for k := i; k <= limit; k++ {
		if m.match(id, i, k) {
			out = append(out, k)
		}
	}
	return out
}

func (m *directMatcher) concatMatch(kids []int, i, j int) bool {
	frontier := map[int]struct{}{i: {}}
	for _, f := range kids {
		next := make(map[int]struct{})
		for k := range frontier {
			for _, k2 := range m.targets(f, k, j) {
				next[k2] = struct{}{}
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	_, ok := frontier[j]
	return ok
}

// plusMatch computes whether j is reachable from i by one or more
// applications of the node's language.
func (m *directMatcher) plusMatch(id, i, j int) bool {
	reached := make(map[int]bool)
	frontier := []int{i}
	for len(frontier) > 0 {
		var next []int
		for _, k := range frontier {
			for _, k2 := range m.targets(id, k, j) {
				if !reached[k2] {
					reached[k2] = true
					next = append(next, k2)
				}
			}
		}
		frontier = next
	}
	return reached[j]
}
