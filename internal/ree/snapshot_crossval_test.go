package ree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagraph"
)

// Cross-validation of the snapshot register-automaton kernel (interned
// labels and values, shared scratch) against the per-call fast path it
// replaced, on randomized graphs with null nodes, under both comparison
// modes.

// randomNullGraph is randomGraph with a fraction of null-valued nodes, so
// the SQL-null special cases of the interned condition evaluator are
// exercised.
func randomNullGraph(seed int64, n, e int) *datagraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagraph.New()
	for i := 0; i < n; i++ {
		v := datagraph.V(fmt.Sprintf("v%d", rng.Intn(3)))
		if rng.Intn(4) == 0 {
			v = datagraph.Null()
		}
		g.MustAddNode(datagraph.NodeID(fmt.Sprintf("n%d", i)), v)
	}
	for k := 0; k < e; k++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		label := []string{"a", "b"}[rng.Intn(2)]
		g.MustAddEdge(datagraph.NodeID(fmt.Sprintf("n%d", from)), label,
			datagraph.NodeID(fmt.Sprintf("n%d", to)))
	}
	return g
}

// legacyEval routes every start node through the pre-snapshot per-call
// path: EvalFrom on an unfrozen clone never sees a snapshot.
func legacyEval(t *testing.T, q *Query, g *datagraph.Graph, mode datagraph.CompareMode) *datagraph.PairSet {
	t.Helper()
	c := g.Clone()
	if c.Snapshot() != nil {
		t.Fatal("clone unexpectedly frozen")
	}
	out := datagraph.NewPairSet()
	for u := 0; u < c.NumNodes(); u++ {
		for _, v := range q.EvalFrom(c, u, mode) {
			out.Add(u, v)
		}
	}
	return out
}

func TestSnapshotGraphEvalMatchesLegacy(t *testing.T) {
	queries := []string{
		"a",
		"(a)=",
		"(a b)!=",
		"(a+)= b*",
		"((a | b)=)+",
		"(a (b)!=)= | b",
		".* (.+)= .*",
		"(c)=", // label absent: dead transitions
	}
	for seed := int64(0); seed < 12; seed++ {
		g := randomNullGraph(seed, 3+int(seed%9), 4+int(seed*3)%30)
		for _, qs := range queries {
			q := MustParseQuery(qs)
			for _, mode := range []datagraph.CompareMode{datagraph.MarkedNulls, datagraph.SQLNulls} {
				got := q.Eval(g, mode) // freezes g, snapshot kernel
				want := legacyEval(t, q, g, mode)
				if !got.Equal(want) {
					t.Fatalf("seed %d query %q mode %v: snapshot %v, legacy %v",
						seed, qs, mode, got.Sorted(), want.Sorted())
				}
				// EvalRange over a sub-range must agree with the full result
				// restricted to that range (the engine's frontier-shard path).
				lo, hi := g.NumNodes()/3, 2*g.NumNodes()/3+1
				ranged := datagraph.NewPairSet()
				q.EvalRange(g, lo, hi, mode, ranged.Add)
				want.Each(func(p datagraph.Pair) {
					if p.From >= lo && p.From < hi && !ranged.Has(p.From, p.To) {
						t.Fatalf("seed %d query %q mode %v: EvalRange missed %v", seed, qs, mode, p)
					}
				})
				if !ranged.SubsetOf(want) {
					t.Fatalf("seed %d query %q mode %v: EvalRange produced extra pairs", seed, qs, mode)
				}
			}
		}
	}
}
