package pcp

import (
	"testing"

	"repro/internal/datagraph"
	"repro/internal/gxpath"
)

func TestBuildTreeGadgetStructure(t *testing.T) {
	in := satInstance()
	tg, err := BuildTreeGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	// It must be a tree rooted at start.
	if err := gxpath.ValidateTree(tg.Tree, tg.Root); err != nil {
		t.Fatal(err)
	}
	// Non-repeating property (Lemma 2 requirement).
	if !gxpath.HasNonRepeatingProperty(tg.Tree) {
		t.Fatal("tree gadget must have the non-repeating property")
	}
	// All values pairwise distinct.
	seen := map[datagraph.Value]bool{}
	for _, n := range tg.Tree.Nodes() {
		if seen[n.Value] {
			t.Fatalf("duplicate value %v", n.Value)
		}
		seen[n.Value] = true
	}
	// Copy mapping is both LAV and GAV and relational (Theorem 6's M).
	if !tg.Mapping.IsLAV() || !tg.Mapping.IsGAV() || !tg.Mapping.IsRelational() {
		t.Fatal("copy mapping must be LAV, GAV, and relational")
	}
	// Each tile contributes |u|+|v| letter leaves.
	letters := 0
	for _, e := range tg.Tree.Edges() {
		if e.Label == "a" || e.Label == "b" {
			letters++
		}
	}
	want := 0
	for _, tile := range in.Tiles {
		want += len(tile.U) + len(tile.V)
	}
	if letters != want {
		t.Fatalf("letter leaves = %d, want %d", letters, want)
	}
}

func TestTreeGadgetRejectsInvalid(t *testing.T) {
	if _, err := BuildTreeGadget(Instance{}); err == nil {
		t.Fatal("empty instance must be rejected")
	}
}

// Theorem 6's bridge: v ∉ 2_M(φ, G) iff some G′ ⊇ G avoids φ at v, where M
// is the copy mapping. We exercise the bounded version of the right-hand
// side.
func TestExistsAvoidingSupergraph(t *testing.T) {
	tg, err := BuildTreeGadget(satInstance())
	if err != nil {
		t.Fatal(err)
	}
	// φ₁ = ⟨t⟩ holds at the root of G and of every supergraph: edges cannot
	// be removed, so no supergraph avoids it.
	phi1 := gxpath.MustParseNode("<t>")
	if _, ok := ExistsAvoidingSupergraph(tg.Tree, tg.Root, phi1,
		SupergraphSearchOptions{MaxNewNodes: 1, MaxNewEdges: 1, MaxCandidates: 5000}); ok {
		t.Fatal("⟨t⟩ holds in every supergraph of the tree")
	}
	// φ₂ = ¬⟨t t⟩ — the root of this 2-tile tree *does* have a t·t path, so
	// ¬⟨t t⟩ is false at the root already... check the dual: φ₃ = ⟨t#⟩ is
	// false at the root (t# hangs deeper) and must stay avoidable: G itself
	// is the witness.
	phi3 := gxpath.MustParseNode("<t#>")
	w, ok := ExistsAvoidingSupergraph(tg.Tree, tg.Root, phi3,
		SupergraphSearchOptions{MaxNewNodes: 0, MaxNewEdges: 0})
	if !ok {
		t.Fatal("G itself avoids ⟨t#⟩ at the root")
	}
	if !w.ContainsAllEdges(tg.Tree) {
		t.Fatal("witness must contain G")
	}
	// φ₄ = ¬⟨x⟩ for a label absent from G: G satisfies φ₄ at the root, but
	// adding one x-edge at the root avoids it. (Supergraphs may only add.)
	phi4 := gxpath.MustParseNode("!<x>")
	w2, ok := ExistsAvoidingSupergraph(tg.Tree, tg.Root, phi4,
		SupergraphSearchOptions{MaxNewNodes: 0, MaxNewEdges: 1, Labels: []string{"x"}})
	if !ok {
		t.Fatal("adding an x-edge should avoid ¬⟨x⟩")
	}
	if !w2.ContainsAllEdges(tg.Tree) {
		t.Fatal("witness must be a supergraph")
	}
	if !gxpath.Satisfies(w2, tg.Root, gxpath.MustParseNode("<x>"), datagraph.MarkedNulls) {
		t.Fatal("witness should have the x-edge at the root")
	}
}

// The ϕ_G/ϕ_δ pinning of Theorem 7 applied to the PCP tree: the tree
// satisfies its own pin, and a value-merged variant does not.
func TestTreeGadgetPinnedByPhiGPhiDelta(t *testing.T) {
	tg, err := BuildTreeGadget(Instance{Tiles: []Tile{{U: "a", V: "b"}}})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := gxpath.PhiG(tg.Tree, tg.Root)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := gxpath.PhiDelta(tg.Tree, tg.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !gxpath.Satisfies(tg.Tree, tg.Root, gxpath.NAnd{L: pg, R: pd}, datagraph.MarkedNulls) {
		t.Fatal("tree must satisfy ϕ_G ∧ ϕ_δ at its root")
	}
	// Merge two values: ϕ_δ must fail.
	nodes := tg.Tree.Nodes()
	merged := tg.Tree.Specialize(map[datagraph.NodeID]datagraph.Value{
		nodes[1].ID: nodes[2].Value,
	})
	if gxpath.Satisfies(merged, tg.Root, pd, datagraph.MarkedNulls) {
		t.Fatal("merged values must violate ϕ_δ")
	}
}
