// Package pcp implements the Post Correspondence Problem machinery behind
// the paper's undecidability results: Theorem 1 (query answering for data
// RPQs under LAV/GAV relational/reachability mappings) and Theorem 6 /
// Lemma 2 (GXPath under copy mappings).
//
// Undecidability itself cannot be executed; what can be executed — and is
// tested both ways on decidable sub-instances — is the reduction machinery:
// the source-graph gadget of Theorem 1 (built exactly as in the paper's
// figure), the LAV/GAV relational/reachability mapping, the witness target
// containing the encoding of a PCP solution, and the error-detecting
// queries reconstructed from the proof sketch (a navigational shape check
// via DFA complement, plus REE data checks: repeated verification values,
// reverse-copy adjacency, letter mismatches). See DESIGN.md §2 for the
// documented reconstruction choices.
package pcp

import (
	"fmt"
	"strings"
)

// Tile is one pair (uᵣ, vᵣ) of nonempty words over {a, b}.
type Tile struct {
	U, V string
}

// Instance is a PCP instance: a finite list of tiles.
type Instance struct {
	Tiles []Tile
}

// Validate checks that all tiles are nonempty words over {a, b}.
func (in Instance) Validate() error {
	if len(in.Tiles) == 0 {
		return fmt.Errorf("pcp: instance has no tiles")
	}
	for i, t := range in.Tiles {
		if t.U == "" || t.V == "" {
			return fmt.Errorf("pcp: tile %d has an empty word", i+1)
		}
		for _, w := range []string{t.U, t.V} {
			for _, r := range w {
				if r != 'a' && r != 'b' {
					return fmt.Errorf("pcp: tile %d uses letter %q outside {a,b}", i+1, r)
				}
			}
		}
	}
	return nil
}

// Apply concatenates the tile words along the index sequence.
func (in Instance) Apply(seq []int) (u, v string, err error) {
	var ub, vb strings.Builder
	for _, r := range seq {
		if r < 1 || r > len(in.Tiles) {
			return "", "", fmt.Errorf("pcp: tile index %d out of range", r)
		}
		ub.WriteString(in.Tiles[r-1].U)
		vb.WriteString(in.Tiles[r-1].V)
	}
	return ub.String(), vb.String(), nil
}

// IsSolution reports whether the sequence of (1-based) tile indices is a
// PCP solution.
func (in Instance) IsSolution(seq []int) bool {
	if len(seq) == 0 {
		return false
	}
	u, v, err := in.Apply(seq)
	return err == nil && u == v
}

// Solve searches for a solution of length at most maxLen by BFS over
// prefix-difference states. It returns a shortest solution if one exists
// within the bound. (PCP is undecidable; the bound makes this a
// semi-decision procedure, which is all a reproduction can offer.)
func (in Instance) Solve(maxLen int) ([]int, bool) {
	if err := in.Validate(); err != nil {
		return nil, false
	}
	// State: the outstanding difference between the u-concatenation and the
	// v-concatenation. diff > 0 conventions: remainder is stored with a
	// side marker. sideU means u is longer: remainder of u not yet matched.
	type state struct {
		rem   string
		uLong bool
	}
	type entry struct {
		st  state
		seq []int
	}
	start := state{rem: "", uLong: true}
	visited := map[state]struct{}{}
	queue := []entry{{st: start}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if len(e.seq) >= maxLen {
			continue
		}
		for r := 1; r <= len(in.Tiles); r++ {
			t := in.Tiles[r-1]
			var u, v string
			if e.st.uLong {
				u = e.st.rem + t.U
				v = t.V
			} else {
				u = t.U
				v = e.st.rem + t.V
			}
			// One must be a prefix of the other.
			var ns state
			switch {
			case strings.HasPrefix(u, v):
				ns = state{rem: u[len(v):], uLong: true}
			case strings.HasPrefix(v, u):
				ns = state{rem: v[len(u):], uLong: false}
			default:
				continue
			}
			seq := append(append([]int(nil), e.seq...), r)
			if ns.rem == "" {
				return seq, true
			}
			if _, dup := visited[ns]; dup {
				continue
			}
			visited[ns] = struct{}{}
			queue = append(queue, entry{st: ns, seq: seq})
		}
	}
	return nil, false
}

// Sequences enumerates all index sequences of length 1..maxLen, calling f
// for each; used by the exhaustive reduction tests on tiny instances.
func (in Instance) Sequences(maxLen int, f func(seq []int) bool) {
	var rec func(seq []int) bool
	rec = func(seq []int) bool {
		if len(seq) > 0 {
			if !f(seq) {
				return false
			}
		}
		if len(seq) == maxLen {
			return true
		}
		for r := 1; r <= len(in.Tiles); r++ {
			if !rec(append(seq, r)) {
				return false
			}
		}
		return true
	}
	rec(nil)
}

func (in Instance) String() string {
	parts := make([]string, len(in.Tiles))
	for i, t := range in.Tiles {
		parts[i] = fmt.Sprintf("(%s,%s)", t.U, t.V)
	}
	return strings.Join(parts, " ")
}
