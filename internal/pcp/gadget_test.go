package pcp

import (
	"strings"
	"testing"

	"repro/internal/datagraph"
)

func satInstance() Instance {
	return Instance{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
}

func TestBuildGadgetStructure(t *testing.T) {
	in := satInstance()
	gd, err := BuildGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 1's mapping shape: LAV, and GAV except the reachability rule;
	// relational/reachability but not relational.
	if !gd.Mapping.IsLAV() {
		t.Fatal("gadget mapping must be LAV")
	}
	if gd.Mapping.IsRelational() {
		t.Fatal("gadget mapping must not be relational (it has Σ*)")
	}
	if !gd.Mapping.IsRelationalReachability() {
		t.Fatal("gadget mapping must be relational/reachability")
	}
	// Source is a single chain: i + Σ tiles(1 + |u| + 1 + |v|) + s + # edges.
	wantEdges := 1 // i
	for _, tile := range in.Tiles {
		wantEdges += 1 + len(tile.U) + 1 + len(tile.V)
	}
	wantEdges += 2 // s, #
	if gd.Source.NumEdges() != wantEdges {
		t.Fatalf("source has %d edges, want %d", gd.Source.NumEdges(), wantEdges)
	}
	if gd.Source.NumNodes() != wantEdges+1 {
		t.Fatalf("source chain should have edges+1 nodes")
	}
	// All values distinct.
	vals := map[datagraph.Value]bool{}
	for _, n := range gd.Source.Nodes() {
		if vals[n.Value] {
			t.Fatalf("duplicate source value %v", n.Value)
		}
		vals[n.Value] = true
	}
}

func TestBuildGadgetRejectsInvalid(t *testing.T) {
	if _, err := BuildGadget(Instance{}); err == nil {
		t.Fatal("empty instance must be rejected")
	}
}

func TestWitnessIsSolutionOfMapping(t *testing.T) {
	in := satInstance()
	gd, err := BuildGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := in.Solve(8)
	if !ok {
		t.Fatal("instance should be satisfiable")
	}
	wit, err := gd.BuildWitness(seq)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := gd.Mapping.Check(gd.Source, wit); !ok {
		t.Fatalf("witness must satisfy the mapping: %s", why)
	}
	// The # edge itself must not be in the witness (it is replaced).
	for _, e := range wit.Edges() {
		if e.Label == LabelHash {
			t.Fatal("witness must not contain a # edge")
		}
	}
}

func TestWitnessCleanForSolution(t *testing.T) {
	in := satInstance()
	gd, err := BuildGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := in.Solve(8)
	wit, err := gd.BuildWitness(seq)
	if err != nil {
		t.Fatal(err)
	}
	fired, err := gd.Errors(wit)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("genuine solution witness must be error-free, fired: %v", fired)
	}
}

func TestWitnessLetterMismatchFires(t *testing.T) {
	// (a,b): sequence [1] has u="a", v="b": equal length, letter mismatch.
	in := Instance{Tiles: []Tile{{U: "a", V: "b"}}}
	gd, err := BuildGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	wit, err := gd.BuildWitness([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	fired, err := gd.Errors(wit)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(fired, "letter-ab") && !contains(fired, "letter-ba") {
		t.Fatalf("letter mismatch should fire, fired: %v", fired)
	}
}

func TestWitnessLengthMismatchFires(t *testing.T) {
	// (a, aa): v-concatenation strictly longer; start anchor must fire.
	in := Instance{Tiles: []Tile{{U: "a", V: "aa"}}}
	gd, err := BuildGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	wit, err := gd.BuildWitness([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	fired, err := gd.Errors(wit)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) == 0 {
		t.Fatal("length mismatch must trigger some detector")
	}
}

func TestShapeDetector(t *testing.T) {
	in := satInstance()
	gd, err := BuildGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	// A lazy target: copy everything and bridge # with a single junk edge.
	lazy := datagraph.New()
	for _, n := range gd.Source.Nodes() {
		lazy.MustAddNode(n.ID, n.Value)
	}
	var preHash datagraph.NodeID
	for _, e := range gd.Source.Edges() {
		if e.Label == LabelHash {
			preHash = e.From
			continue
		}
		lazy.MustAddEdge(e.From, e.Label, e.To)
	}
	lazy.MustAddEdge(preHash, "t", gd.End) // wrong shape bridge
	if ok, _ := gd.Mapping.Check(gd.Source, lazy); !ok {
		t.Fatal("lazy target still satisfies the mapping (any path works for Σ*)")
	}
	fired, err := gd.Errors(lazy)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(fired, "shape") {
		t.Fatalf("shape detector should fire on junk bridge, fired: %v", fired)
	}
}

func TestCorruptedVerificationValues(t *testing.T) {
	in := satInstance()
	gd, err := BuildGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := in.Solve(8)
	wit, err := gd.BuildWitness(seq)
	if err != nil {
		t.Fatal(err)
	}
	// Find two verification nodes (after the v edge) and duplicate a value.
	var verNodes []datagraph.NodeID
	for _, e := range wit.Edges() {
		if e.Label == LabelVerify {
			// walk forward from e.To collecting letter targets
			cur, _ := wit.IndexOf(e.To)
			verNodes = append(verNodes, e.To)
			for {
				found := false
				for _, he := range wit.Out(cur) {
					if he.Label == "a" || he.Label == "b" {
						verNodes = append(verNodes, wit.Node(he.To).ID)
						cur = he.To
						found = true
						break
					}
				}
				if !found {
					break
				}
			}
		}
	}
	if len(verNodes) < 2 {
		t.Fatalf("expected verification chain, got %v", verNodes)
	}
	first, _ := wit.NodeByID(verNodes[0])
	corrupted := wit.Specialize(map[datagraph.NodeID]datagraph.Value{
		verNodes[1]: first.Value,
	})
	fired, err := gd.Errors(corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(fired, "repeat") {
		t.Fatalf("repeat detector should fire on duplicated verification value, fired: %v", fired)
	}
}

func TestCorruptedCopyAdjacency(t *testing.T) {
	in := satInstance()
	gd, err := BuildGadget(in)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := in.Solve(8)
	wit, err := gd.BuildWitness(seq)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one id-copy value (set it to a fresh unknown value).
	for _, e := range wit.Edges() {
		if e.Label == LabelID {
			corrupted := wit.Specialize(map[datagraph.NodeID]datagraph.Value{
				e.To: datagraph.V("corrupted_copy"),
			})
			fired, err := gd.Errors(corrupted)
			if err != nil {
				t.Fatal(err)
			}
			if len(fired) == 0 {
				t.Fatalf("corrupting copy %s should trigger a detector", e.To)
			}
			return
		}
	}
	t.Fatal("no id edge found")
}

// The reduction, both ways, on a tiny decidable instance: enumerating all
// candidate sequences, the witness is error-free iff the sequence is a
// genuine PCP solution.
func TestReductionBothWaysExhaustive(t *testing.T) {
	instances := []Instance{
		{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}, // satisfiable
		{Tiles: []Tile{{U: "a", V: "b"}}},                     // unsatisfiable
		{Tiles: []Tile{{U: "ab", V: "a"}, {U: "b", V: "bb"}}}, // unsat ≤ 3
	}
	for _, in := range instances {
		gd, err := BuildGadget(in)
		if err != nil {
			t.Fatal(err)
		}
		in.Sequences(3, func(seq []int) bool {
			wit, err := gd.BuildWitness(seq)
			if err != nil {
				t.Fatal(err)
			}
			fired, err := gd.Errors(wit)
			if err != nil {
				t.Fatal(err)
			}
			clean := len(fired) == 0
			if clean != in.IsSolution(seq) {
				t.Errorf("instance %v seq %v: clean=%v but IsSolution=%v (fired %v)",
					in, seq, clean, in.IsSolution(seq), fired)
			}
			return true
		})
	}
}

// CertainOnGadget must mirror the PCP solver on the decidable slice.
func TestCertainOnGadgetMirrorsSolver(t *testing.T) {
	instances := []Instance{
		{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}},
		{Tiles: []Tile{{U: "a", V: "b"}}},
		{Tiles: []Tile{{U: "a", V: "aa"}, {U: "aa", V: "a"}}},
		{Tiles: []Tile{{U: "ab", V: "a"}, {U: "b", V: "bb"}}},
	}
	const bound = 3
	for _, in := range instances {
		gd, err := BuildGadget(in)
		if err != nil {
			t.Fatal(err)
		}
		certain, wit, err := gd.CertainOnGadget(bound)
		if err != nil {
			t.Fatal(err)
		}
		_, solvable := in.Solve(bound)
		if certain != !solvable {
			t.Errorf("instance %v: certain=%v but solvable≤%d=%v", in, certain, bound, solvable)
		}
		if !certain {
			if wit == nil {
				t.Fatalf("instance %v: not-certain verdict needs a witness", in)
			}
			if ok, why := gd.Mapping.Check(gd.Source, wit); !ok {
				t.Fatalf("instance %v: witness is not a solution: %s", in, why)
			}
		}
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestShapeRegexMentionsAllSections(t *testing.T) {
	gd, err := BuildGadget(satInstance())
	if err != nil {
		t.Fatal(err)
	}
	s := gd.ShapeRegex().String()
	for _, frag := range []string{"i", "t", "sep", "mbar", "id", "s", "v"} {
		if !strings.Contains(s, frag) {
			t.Errorf("shape regex missing %q: %s", frag, s)
		}
	}
}
