package pcp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagraph"
)

// This file builds the Theorem 1 gadget: the source data graph encoding a
// PCP instance, the LAV/GAV relational/reachability mapping, and the
// single-path witness target encoding a PCP solution.
//
// Alphabet (both source and target): {a, b, i, t, m, mbar, id, s, v, sep, #}
// where mbar renders the paper's m̄ and sep renders ↔ (kept ASCII for the
// CLI formats; the parsers accept ↔ too, but the gadget sticks to ASCII).

// Gadget labels.
const (
	LabelInput  = "i"
	LabelTile   = "t"
	LabelMark   = "m"
	LabelMbar   = "mbar"
	LabelID     = "id"
	LabelSol    = "s"
	LabelVerify = "v"
	LabelSep    = "sep" // the paper's ↔
	LabelHash   = "#"
)

// Alphabet returns the gadget's full label alphabet.
func Alphabet() []string {
	return []string{"a", "b", LabelInput, LabelTile, LabelMark, LabelMbar,
		LabelID, LabelSol, LabelVerify, LabelSep, LabelHash}
}

// Gadget bundles the Theorem 1 reduction artefacts for one PCP instance.
type Gadget struct {
	Instance Instance
	Source   *datagraph.Graph
	Start    datagraph.NodeID
	End      datagraph.NodeID
	Mapping  *core.Mapping
}

// BuildGadget constructs the source database of the Theorem 1 figure: a
// single chain
//
//	start -i→ · ( -t→ · -u¹ᵣ→ · … -sep→ · -v¹ᵣ→ … )ᵣ₌₁..ₙ -s→ · -#→ end
//
// with pairwise distinct data values, together with the LAV/GAV
// relational/reachability mapping {(ℓ,ℓ) | ℓ ∈ {a,b,t,i,s,sep}} ∪ {(#, Σ*)}.
func BuildGadget(in Instance) (*Gadget, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := datagraph.New()
	val := 0
	freshValue := func() datagraph.Value {
		val++
		return datagraph.V(fmt.Sprintf("src%d", val))
	}
	node := 0
	addNode := func() datagraph.NodeID {
		node++
		id := datagraph.NodeID(fmt.Sprintf("g%d", node))
		g.MustAddNode(id, freshValue())
		return id
	}
	start := datagraph.NodeID("start")
	g.MustAddNode(start, freshValue())
	cur := addNode()
	g.MustAddEdge(start, LabelInput, cur)
	step := func(label string) {
		next := addNode()
		g.MustAddEdge(cur, label, next)
		cur = next
	}
	for _, tile := range in.Tiles {
		step(LabelTile)
		for _, letter := range tile.U {
			step(string(letter))
		}
		step(LabelSep)
		for _, letter := range tile.V {
			step(string(letter))
		}
	}
	step(LabelSol)
	end := datagraph.NodeID("end")
	g.MustAddNode(end, freshValue())
	g.MustAddEdge(cur, LabelHash, end)

	m := core.NewMapping(
		core.R("a", "a"),
		core.R("b", "b"),
		core.R(LabelTile, LabelTile),
		core.R(LabelInput, LabelInput),
		core.R(LabelSol, LabelSol),
		core.R(LabelSep, LabelSep),
		core.R(LabelHash, ".*"),
	)
	return &Gadget{Instance: in, Source: g, Start: start, End: end, Mapping: m}, nil
}

// BuildWitness constructs the single-path target encoding a candidate
// solution sequence (1-based tile indices), mirroring the paper's π_r
// blocks:
//
//   - every non-# source edge is copied;
//   - in place of the # edge, a path from the pre-# node to end carrying,
//     for each tile r of the sequence, the block
//     tⁿ⁻ʳ m (v-letter · id)^{|vᵣ|, reversed} sep (u-letter · id)^{|uᵣ|,
//     reversed} mbar tʳ⁻¹ s, followed by a final v separator and the
//     verification section spelling u_{r₁}···u_{rₘ};
//   - values after each id edge copy the verification values; all other
//     inserted values are fresh and pairwise distinct.
//
// Blocks are emitted in *reverse* sequence order and each side is reversed
// within its block, so both the u-copy stream and the v-copy stream spell
// the verification values in globally reversed order. This makes every
// consecutive same-stream copy pair verification-adjacent, which is what
// lets the adjacency detector express the reverse-copy property with
// *nested* (hence REE-expressible) equality tests — crossing tests are
// exactly what REE cannot do. The paper's proof sketch only says the copies
// appear "in the reverse order"; this layout is our documented
// reconstruction of that discipline (DESIGN.md §2).
//
// The sequence need not be a genuine solution — the detector tests rely on
// building witnesses for wrong sequences too. BuildWitness errors only if
// indices are out of range.
func (gd *Gadget) BuildWitness(seq []int) (*datagraph.Graph, error) {
	in := gd.Instance
	uWord, _, err := in.Apply(seq)
	if err != nil {
		return nil, err
	}
	n := len(in.Tiles)

	gt := datagraph.New()
	for _, nd := range gd.Source.Nodes() {
		gt.MustAddNode(nd.ID, nd.Value)
	}
	var preHash datagraph.NodeID
	for _, e := range gd.Source.Edges() {
		if e.Label == LabelHash {
			preHash = e.From
			continue
		}
		gt.MustAddEdge(e.From, e.Label, e.To)
	}

	// Verification values: one per letter of the u-concatenation, all
	// fresh, with the final position landing on the end node (whose source
	// value is distinct from everything else by construction).
	K := len(uWord)
	verValues := make([]datagraph.Value, K+1)
	fresh := 0
	freshValue := func() datagraph.Value {
		fresh++
		return datagraph.V(fmt.Sprintf("wit%d", fresh))
	}
	for k := 0; k <= K; k++ {
		verValues[k] = freshValue()
	}
	endNode, _ := gt.NodeByID(gd.End)
	verValues[K] = endNode.Value

	nodeN := 0
	cur := preHash
	addStep := func(label string, value datagraph.Value) datagraph.NodeID {
		nodeN++
		id := datagraph.NodeID(fmt.Sprintf("w%d", nodeN))
		gt.MustAddNode(id, value)
		gt.MustAddEdge(cur, label, id)
		cur = id
		return id
	}

	// Cumulative letter positions at the start of each solution-order
	// block: uStart[p] = |u_{r₁}···u_{rₚ}| consumed before block p+1.
	m := len(seq)
	uStart := make([]int, m+1)
	vStart := make([]int, m+1)
	for p, r := range seq {
		uStart[p+1] = uStart[p] + len(in.Tiles[r-1].U)
		vStart[p+1] = vStart[p] + len(in.Tiles[r-1].V)
	}
	// Emit blocks in reverse solution order (see doc comment).
	for q := m - 1; q >= 0; q-- {
		r := seq[q]
		tile := in.Tiles[r-1]
		uPos, vPos := uStart[q], vStart[q]
		for i := 0; i < n-r; i++ {
			addStep(LabelTile, freshValue())
		}
		addStep(LabelMark, freshValue())
		// v-side, reversed: copy values reference the v-side verification
		// positions vPos+|v| … vPos+1 (the verification section spells the
		// u-concatenation; for genuine solutions the two coincide).
		for j := len(tile.V) - 1; j >= 0; j-- {
			addStep(string(tile.V[j]), freshValue())
			pos := vPos + j + 1
			copyVal := freshValue()
			if pos <= K {
				copyVal = verValues[pos]
			}
			addStep(LabelID, copyVal)
		}
		addStep(LabelSep, freshValue())
		// u-side, reversed.
		for j := len(tile.U) - 1; j >= 0; j-- {
			addStep(string(tile.U[j]), freshValue())
			pos := uPos + j + 1
			copyVal := freshValue()
			if pos <= K {
				copyVal = verValues[pos]
			}
			addStep(LabelID, copyVal)
		}
		addStep(LabelMbar, freshValue())
		for i := 0; i < r-1; i++ {
			addStep(LabelTile, freshValue())
		}
		addStep(LabelSol, freshValue())
	}
	// Verification section.
	addStep(LabelVerify, verValues[0])
	for k := 1; k < K; k++ {
		addStep(string(uWord[k-1]), verValues[k])
	}
	// Final letter lands on end.
	gt.MustAddEdge(cur, string(uWord[K-1]), gd.End)
	return gt, nil
}
