package pcp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/gxpath"
)

// This file implements the Theorem 6 / Lemma 2 machinery: PCP instances
// encoded as data *trees* with the non-repeating property, the copy mapping
// {(a, a) | a ∈ Σ} (both LAV and GAV, and relational), and a bounded search
// for supergraphs avoiding a GXPath node expression — the decidable
// fragment of the (undecidable in general) question of Lemma 2.

// Tree-gadget labels. The paper's ←, →, ←#, →# and t# separators are
// rendered ASCII.
const (
	TreeNext     = "t"
	TreeEnd      = "t#"
	TreeLeft     = "l"
	TreeLeftEnd  = "l#"
	TreeRight    = "r"
	TreeRightEnd = "r#"
)

// TreeAlphabet returns the labels of the Lemma 2 tree encoding.
func TreeAlphabet() []string {
	return []string{"a", "b", TreeNext, TreeEnd, TreeLeft, TreeLeftEnd, TreeRight, TreeRightEnd}
}

// TreeGadget bundles the Theorem 6 artefacts.
type TreeGadget struct {
	Instance Instance
	Tree     *datagraph.Graph
	Root     datagraph.NodeID
	Mapping  *core.Mapping
}

// BuildTreeGadget encodes the PCP instance as the source tree of the
// Theorem 6 figure: a horizontal t-path start → I₁ → … → Iₙ terminated by
// t#, where each Iᵣ hangs a left chain of l-edges (one node per letter of
// uᵣ, each carrying its letter as an a/b-labelled leaf edge, terminated by
// l#) and a right chain of r-edges for vᵣ (terminated by r#). All data
// values are pairwise distinct and the tree has the non-repeating property.
func BuildTreeGadget(in Instance) (*TreeGadget, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := datagraph.New()
	val, node := 0, 0
	freshValue := func() datagraph.Value {
		val++
		return datagraph.V(fmt.Sprintf("tv%d", val))
	}
	addNode := func() datagraph.NodeID {
		node++
		id := datagraph.NodeID(fmt.Sprintf("tn%d", node))
		g.MustAddNode(id, freshValue())
		return id
	}
	root := datagraph.NodeID("start")
	g.MustAddNode(root, freshValue())
	cur := root
	addChain := func(parent datagraph.NodeID, word string, step, stop string) {
		p := parent
		for _, letter := range word {
			c := addNode()
			g.MustAddEdge(p, step, c)
			leaf := addNode()
			g.MustAddEdge(c, string(letter), leaf)
			p = c
		}
		terminator := addNode()
		g.MustAddEdge(p, stop, terminator)
	}
	for _, tile := range in.Tiles {
		ir := addNode()
		g.MustAddEdge(cur, TreeNext, ir)
		addChain(ir, tile.U, TreeLeft, TreeLeftEnd)
		addChain(ir, tile.V, TreeRight, TreeRightEnd)
		cur = ir
	}
	endNode := addNode()
	g.MustAddEdge(cur, TreeEnd, endNode)

	var rules []core.Rule
	for _, l := range TreeAlphabet() {
		rules = append(rules, core.R(l, l))
	}
	return &TreeGadget{Instance: in, Tree: g, Root: root, Mapping: core.NewMapping(rules...)}, nil
}

// SupergraphSearchOptions bounds ExistsAvoidingSupergraph.
type SupergraphSearchOptions struct {
	// MaxNewNodes is the number of fresh nodes that may be added.
	MaxNewNodes int
	// MaxNewEdges is the number of edges that may be added.
	MaxNewEdges int
	// Labels restricts the labels of added edges (defaults to TreeAlphabet).
	Labels []string
	// MaxCandidates caps the total number of supergraphs examined.
	MaxCandidates int
}

// ExistsAvoidingSupergraph searches for a data graph G′ ⊇ G in which the
// node `at` does not satisfy φ — the Lemma 2 question, bounded. Fresh nodes
// get pairwise distinct fresh values. It returns the first witness found.
// Lemma 2 shows the unbounded question is undecidable; this bounded variant
// powers the experiments on tiny instances.
func ExistsAvoidingSupergraph(g *datagraph.Graph, at datagraph.NodeID, phi gxpath.NodeExpr,
	opts SupergraphSearchOptions) (*datagraph.Graph, bool) {

	if opts.Labels == nil {
		opts.Labels = TreeAlphabet()
	}
	if opts.MaxCandidates == 0 {
		opts.MaxCandidates = 200000
	}
	tried := 0
	check := func(h *datagraph.Graph) bool {
		tried++
		return !gxpath.Satisfies(h, at, phi, datagraph.MarkedNulls)
	}
	// 0 additions: G itself.
	if check(g) {
		return g, true
	}
	// Enumerate candidates by number of fresh nodes, then edge sets among
	// (old ∪ new) nodes with the allowed labels, up to MaxNewEdges edges.
	for newNodes := 0; newNodes <= opts.MaxNewNodes; newNodes++ {
		base := g.Clone()
		for i := 0; i < newNodes; i++ {
			base.MustAddNode(datagraph.NodeID(fmt.Sprintf("_x%d", i)),
				datagraph.V(fmt.Sprintf("_xv%d", i)))
		}
		n := base.NumNodes()
		// All candidate directed labelled edges not already present.
		type edge struct {
			from, to datagraph.NodeID
			label    string
		}
		var slots []edge
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for _, l := range opts.Labels {
					e := edge{base.Node(u).ID, base.Node(v).ID, l}
					if !base.HasEdge(e.from, e.label, e.to) {
						slots = append(slots, e)
					}
				}
			}
		}
		// Choose up to MaxNewEdges slots (combinations, smallest first).
		var choose func(startIdx, remaining int, h *datagraph.Graph) (*datagraph.Graph, bool)
		choose = func(startIdx, remaining int, h *datagraph.Graph) (*datagraph.Graph, bool) {
			if tried >= opts.MaxCandidates {
				return nil, false
			}
			if check(h) {
				return h, true
			}
			if remaining == 0 {
				return nil, false
			}
			for i := startIdx; i < len(slots); i++ {
				h2 := h.Clone()
				h2.MustAddEdge(slots[i].from, slots[i].label, slots[i].to)
				if w, ok := choose(i+1, remaining-1, h2); ok {
					return w, ok
				}
				if tried >= opts.MaxCandidates {
					return nil, false
				}
			}
			return nil, false
		}
		if w, ok := choose(0, opts.MaxNewEdges, base); ok {
			return w, true
		}
	}
	return nil, false
}
