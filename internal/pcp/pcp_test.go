package pcp

import (
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	good := Instance{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Instance{
		{},
		{Tiles: []Tile{{U: "", V: "a"}}},
		{Tiles: []Tile{{U: "a", V: "ac"}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("instance %v should be invalid", bad)
		}
	}
}

func TestApplyAndIsSolution(t *testing.T) {
	in := Instance{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
	u, v, err := in.Apply([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if u != "aba" || v != "aba" {
		t.Fatalf("apply: u=%q v=%q", u, v)
	}
	if !in.IsSolution([]int{1, 2}) {
		t.Fatal("[1,2] is a solution")
	}
	if in.IsSolution([]int{1}) || in.IsSolution([]int{2, 1}) || in.IsSolution(nil) {
		t.Fatal("non-solutions accepted")
	}
	if _, _, err := in.Apply([]int{3}); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

func TestSolveSatisfiable(t *testing.T) {
	// Classic satisfiable instance.
	in := Instance{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
	seq, ok := in.Solve(10)
	if !ok {
		t.Fatal("instance is satisfiable")
	}
	if !in.IsSolution(seq) {
		t.Fatalf("returned sequence %v is not a solution", seq)
	}
	// Another: (ab, a)(b, bb)? u= ab..., try known: (a, aa)(aa, a):
	in2 := Instance{Tiles: []Tile{{U: "a", V: "aa"}, {U: "aa", V: "a"}}}
	seq2, ok := in2.Solve(10)
	if !ok || !in2.IsSolution(seq2) {
		t.Fatalf("in2 should be satisfiable: %v %v", seq2, ok)
	}
}

func TestSolveUnsatisfiable(t *testing.T) {
	for _, in := range []Instance{
		{Tiles: []Tile{{U: "a", V: "b"}}},
		{Tiles: []Tile{{U: "ab", V: "a"}}}, // u always longer once started
		{Tiles: []Tile{{U: "aa", V: "a"}, {U: "ab", V: "b"}}},
	} {
		if seq, ok := in.Solve(12); ok {
			t.Errorf("instance %v should have no solution ≤ 12, got %v", in, seq)
		}
	}
}

func TestSolveShortest(t *testing.T) {
	in := Instance{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
	seq, ok := in.Solve(10)
	if !ok || len(seq) != 2 {
		t.Fatalf("shortest solution should have length 2: %v", seq)
	}
}

func TestSequences(t *testing.T) {
	in := Instance{Tiles: []Tile{{U: "a", V: "a"}, {U: "b", V: "b"}}}
	var all [][]int
	in.Sequences(2, func(seq []int) bool {
		all = append(all, append([]int(nil), seq...))
		return true
	})
	// 2 of length 1 + 4 of length 2.
	if len(all) != 6 {
		t.Fatalf("enumerated %d sequences, want 6: %v", len(all), all)
	}
	// Early stop.
	count := 0
	in.Sequences(2, func([]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestStringRendering(t *testing.T) {
	in := Instance{Tiles: []Tile{{U: "a", V: "ab"}}}
	if in.String() != "(a,ab)" {
		t.Fatalf("String = %q", in.String())
	}
}

func TestSolveRespectsBound(t *testing.T) {
	// Satisfiable but only with length ≥ 2: bound 1 must fail.
	in := Instance{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
	if _, ok := in.Solve(1); ok {
		t.Fatal("bound 1 should not find the length-2 solution")
	}
}

func TestApplySeqOrderMatters(t *testing.T) {
	in := Instance{Tiles: []Tile{{U: "a", V: "ab"}, {U: "ba", V: "a"}}}
	u1, v1, _ := in.Apply([]int{1, 2})
	u2, v2, _ := in.Apply([]int{2, 1})
	if u1 == u2 && v1 == v2 {
		t.Fatal("order should matter")
	}
	if !reflect.DeepEqual([]string{u1, v1}, []string{"aba", "aba"}) {
		t.Fatalf("u1=%q v1=%q", u1, v1)
	}
}
