package pcp

import (
	"fmt"
	"strings"

	"repro/internal/datagraph"
	"repro/internal/ree"
	"repro/internal/rex"
)

// This file reconstructs the error-detecting query Q of Theorem 1 from the
// proof sketch. Q is a disjunction: a navigational shape check (an ordinary
// regular expression, realised as the complement of the expected shape via
// our DFA substrate) plus REE data detectors. (start, end) is *not* a
// certain answer iff some solution avoids every disjunct — for satisfiable
// PCP instances the witness built by BuildWitness is such a solution.
//
// Detector inventory (see DESIGN.md §2 for the reconstruction notes):
//
//	shape    — the start→end path deviates from
//	           W_src · (Σᵣ BLOCKᵣ · s)⁺ · v · (a|b)⁺, with per-tile exact
//	           block patterns (this also subsumes tile-validity errors);
//	repeat   — two equal data values inside the verification section
//	           (the paper: "pairwise distinct data values" after v);
//	adjacent — two consecutive same-stream id-copies that are not adjacent
//	           (in reverse) in the verification section;
//	letter   — an id-copy whose unit letter differs from the letter at its
//	           verification occurrence (the paper's "mismatch" detector);
//	anchor-u — the last u-side copy is not the first verification value;
//	anchor-v — the last v-side copy is not the first verification value;
//	start-u  — the first u-side copy is not the last verification value
//	           (instance-specific: anchored on the exact source prefix);
//	start-v  — likewise for the first v-side copy.
//
// Together: the start anchors pin each copy stream to ver[K], the end
// anchors to ver[1], the adjacency detector forces each consecutive pair to
// descend by exactly one verification position, and the repeat detector
// makes verification values pairwise distinct — so an error-free target
// spells both streams as ver[K..1], forcing equal u- and v-concatenations,
// while the letter detectors force the spelled letters to agree. An
// error-free single-path target therefore decodes to a genuine PCP
// solution.
type Detector struct {
	Name string
	// Query is nil for the navigational shape detector, which is evaluated
	// through the complement DFA instead.
	Query *ree.Query
}

// letterAlt is (a|b) in concrete syntax.
const letterAlt = "(a|b)"

// unitAlt is one side unit ((a|b) id).
const unitAlt = "((a|b) id)"

// DataDetectors returns the REE error detectors.
func DataDetectors() []Detector {
	bridgeU := "mbar t* s t* m " + unitAlt + "* sep"
	bridgeV := "sep " + unitAlt + "* mbar t* s t* m"
	return []Detector{
		{
			Name:  "repeat",
			Query: ree.MustParseQuery(".* v .* (.+)= .*"),
		},
		{
			Name: "adjacent",
			Query: ree.MustParseQuery(fmt.Sprintf(
				".* id ((()|%s|%s) %s id (.* v .*)= %s)!= .*",
				bridgeU, bridgeV, letterAlt, letterAlt)),
		},
		{
			Name:  "letter-ab",
			Query: ree.MustParseQuery(".* a id (.* v .* b)= .*"),
		},
		{
			Name:  "letter-ba",
			Query: ree.MustParseQuery(".* b id (.* v .* a)= .*"),
		},
		{
			Name:  "anchor-u",
			Query: ree.MustParseQuery(".* " + letterAlt + " id (mbar t* s v " + letterAlt + ")!= .*"),
		},
		{
			Name: "anchor-v",
			Query: ree.MustParseQuery(
				".* " + letterAlt + " id (sep " + unitAlt + "* mbar t* s v " + letterAlt + ")!= .*"),
		},
	}
}

// sourcePrefixExpr renders the exact source-prefix word
// i (t u_r sep v_r)_{r=1..n} s in concrete syntax.
func (gd *Gadget) sourcePrefixExpr() string {
	var b strings.Builder
	b.WriteString("i ")
	for _, tile := range gd.Instance.Tiles {
		b.WriteString("t ")
		for _, l := range tile.U {
			b.WriteString(string(l) + " ")
		}
		b.WriteString("sep ")
		for _, l := range tile.V {
			b.WriteString(string(l) + " ")
		}
	}
	b.WriteString("s")
	return b.String()
}

// StartAnchors returns the instance-specific start-anchor detectors: the
// first copy of each stream (which lies in the first inserted block, right
// after the exact source prefix) must carry the last verification value,
// i.e. the data value of the end node.
func (gd *Gadget) StartAnchors() []Detector {
	prefix := gd.sourcePrefixExpr()
	return []Detector{
		{
			Name:  "start-v",
			Query: ree.MustParseQuery(prefix + " t* m " + letterAlt + " id (.*)!="),
		},
		{
			Name: "start-u",
			Query: ree.MustParseQuery(
				prefix + " t* m " + unitAlt + "* sep " + letterAlt + " id (.*)!="),
		},
	}
}

// ShapeRegex returns the expected shape of the full start→end path for this
// instance: the exact source-prefix word, one or more per-tile blocks each
// followed by s, then the verification section.
func (gd *Gadget) ShapeRegex() rex.Regex {
	var b strings.Builder
	b.WriteString(gd.sourcePrefixExpr())
	b.WriteString(" ")
	// Blocks: union over tiles of the exact reversed pattern.
	var blocks []string
	n := len(gd.Instance.Tiles)
	for r := 1; r <= n; r++ {
		tile := gd.Instance.Tiles[r-1]
		var blk strings.Builder
		for i := 0; i < n-r; i++ {
			blk.WriteString("t ")
		}
		blk.WriteString("m ")
		for j := len(tile.V) - 1; j >= 0; j-- {
			blk.WriteString(string(tile.V[j]) + " id ")
		}
		blk.WriteString("sep ")
		for j := len(tile.U) - 1; j >= 0; j-- {
			blk.WriteString(string(tile.U[j]) + " id ")
		}
		blk.WriteString("mbar ")
		for i := 0; i < r-1; i++ {
			blk.WriteString("t ")
		}
		blocks = append(blocks, strings.TrimSpace(blk.String()))
	}
	fmt.Fprintf(&b, "((%s) s)+ v (a|b)+", strings.Join(blocks, "|"))
	return rex.MustParse(b.String())
}

// ShapeErrorHolds reports whether some path from `from` to `to` deviates
// from the expected shape: it runs the complement DFA of ShapeRegex over
// the product with the graph.
func (gd *Gadget) ShapeErrorHolds(gt *datagraph.Graph, from, to datagraph.NodeID) (bool, error) {
	fi, ok := gt.IndexOf(from)
	if !ok {
		return false, fmt.Errorf("pcp: node %s not in target", from)
	}
	ti, ok := gt.IndexOf(to)
	if !ok {
		return false, fmt.Errorf("pcp: node %s not in target", to)
	}
	dfa := rex.Determinize(rex.Compile(gd.ShapeRegex()), Alphabet()).Complement()
	// Product BFS: (node, dfa state).
	type cfg struct{ node, state int }
	start := cfg{fi, 0}
	seen := map[cfg]struct{}{start: {}}
	queue := []cfg{start}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if c.node == ti && dfa.Accepts[c.state] {
			return true, nil
		}
		for _, he := range gt.Out(c.node) {
			nx := cfg{he.To, stepDFA(dfa, c.state, he.Label)}
			if _, dup := seen[nx]; !dup {
				seen[nx] = struct{}{}
				queue = append(queue, nx)
			}
		}
	}
	return false, nil
}

func stepDFA(d *rex.DFA, state int, label string) int {
	col := len(d.Alphabet)
	for i, a := range d.Alphabet {
		if a == label {
			col = i
			break
		}
	}
	return d.Trans[state][col]
}

// CertainOnGadget is the bounded semi-decision procedure for the gadget
// family: it decides whether (start, end) behaves as a certain answer of
// the error-detecting query by searching candidate solution sequences up to
// maxSeqLen. If some candidate's witness target avoids every detector, the
// pair is not certain and the witness is returned; otherwise the pair is
// certain within the bound. Theorem 1 says no bound works for every
// instance — this is exactly the decidable slice the experiments exercise,
// and by the detector completeness argument (see the Detector comment) a
// clean witness exists iff the instance has a solution of length ≤ maxSeqLen.
func (gd *Gadget) CertainOnGadget(maxSeqLen int) (certain bool, witness *datagraph.Graph, err error) {
	found := false
	var wit *datagraph.Graph
	var innerErr error
	gd.Instance.Sequences(maxSeqLen, func(seq []int) bool {
		w, e := gd.BuildWitness(seq)
		if e != nil {
			innerErr = e
			return false
		}
		fired, e := gd.Errors(w)
		if e != nil {
			innerErr = e
			return false
		}
		if len(fired) == 0 {
			found = true
			wit = w
			return false
		}
		return true
	})
	if innerErr != nil {
		return false, nil, innerErr
	}
	if found {
		return false, wit, nil
	}
	return true, nil, nil
}

// Errors evaluates every detector on the target for the pair
// (start, end) and returns the names of those that fire. An empty result
// means the target is an error-free encoding, i.e. it witnesses
// (start, end) ∉ 2_M(Q, Gs).
func (gd *Gadget) Errors(gt *datagraph.Graph) ([]string, error) {
	var fired []string
	shape, err := gd.ShapeErrorHolds(gt, gd.Start, gd.End)
	if err != nil {
		return nil, err
	}
	if shape {
		fired = append(fired, "shape")
	}
	si, ok := gt.IndexOf(gd.Start)
	if !ok {
		return nil, fmt.Errorf("pcp: start missing from target")
	}
	ei, ok := gt.IndexOf(gd.End)
	if !ok {
		return nil, fmt.Errorf("pcp: end missing from target")
	}
	detectors := append(DataDetectors(), gd.StartAnchors()...)
	for _, d := range detectors {
		for _, v := range d.Query.EvalFrom(gt, si, datagraph.MarkedNulls) {
			if v == ei {
				fired = append(fired, d.Name)
				break
			}
		}
	}
	return fired, nil
}
