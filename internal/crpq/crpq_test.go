package crpq

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagraph"
)

// triangleGraph: ann knows bob knows carl; ann,carl share age 30; everyone
// likes post p.
func triangleGraph(t *testing.T) *datagraph.Graph {
	t.Helper()
	g := datagraph.New()
	g.MustAddNode("ann", datagraph.V("30"))
	g.MustAddNode("bob", datagraph.V("25"))
	g.MustAddNode("carl", datagraph.V("30"))
	g.MustAddNode("p", datagraph.V("graphs"))
	g.MustAddEdge("ann", "knows", "bob")
	g.MustAddEdge("bob", "knows", "carl")
	g.MustAddEdge("ann", "likes", "p")
	g.MustAddEdge("carl", "likes", "p")
	return g
}

func TestParseAndString(t *testing.T) {
	q := MustParse("ans(x, y) :- x -[knows]-> z, z -[knows]-> y")
	if len(q.Head) != 2 || len(q.Atoms) != 2 {
		t.Fatalf("parsed %v", q)
	}
	// Round trip through String.
	q2 := MustParse(q.String())
	if q2.String() != q.String() {
		t.Fatalf("round trip: %q vs %q", q.String(), q2.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"ans(x, y)",                   // no :-
		"ans x :- x -[a]-> y",         // bad head
		"ans(x) :- x -[a] y",          // bad atom arrow
		"ans(x) :- ",                  // no atoms
		"ans(q) :- x -[a]-> y",        // head var unused
		"ans(x) :- x -[ (( ]-> y",     // bad REE
		"ans(x) :- x -[rem: !x]-> y",  // bad REM
		"ans(x) :- x -[rpq: (( ]-> y", // bad RPQ
		"ans() :- x -[a]-> y",         // empty head list... parses vars
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestEvalJoin(t *testing.T) {
	g := triangleGraph(t)
	// Two-hop friends who both like the same post.
	q := MustParse("ans(x, y) :- x -[knows]-> z, z -[knows]-> y, x -[likes]-> w, y -[likes]-> w")
	res, err := q.Eval(g, datagraph.MarkedNulls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Has("ann", "carl") {
		t.Fatalf("answers = %v", res.Sorted())
	}
}

func TestEvalDataAtom(t *testing.T) {
	g := triangleGraph(t)
	// Same-age two-hop pairs: (knows knows)= as a data atom.
	q := MustParse("ans(x, y) :- x -[(knows knows)=]-> y")
	res, err := q.Eval(g, datagraph.MarkedNulls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Has("ann", "carl") {
		t.Fatalf("answers = %v", res.Sorted())
	}
	// REM atom.
	q2 := MustParse("ans(x, y) :- x -[rem: !v.((knows knows)[v=])]-> y")
	res2, err := q2.Eval(g, datagraph.MarkedNulls)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Equal(res) {
		t.Fatalf("REM atom disagrees: %v", res2.Sorted())
	}
	// Navigational atom.
	q3 := MustParse("ans(x) :- x -[rpq: knows*]-> y, y -[likes]-> p")
	res3, err := q3.Eval(g, datagraph.MarkedNulls)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone reaching a liker: ann (self), bob (carl), carl (self), and
	// ann->bob->carl. Projected heads: ann, bob, carl.
	if res3.Len() != 3 {
		t.Fatalf("answers = %v", res3.Sorted())
	}
}

func TestSelfJoinVariable(t *testing.T) {
	g := datagraph.New()
	g.MustAddNode("a", datagraph.V("1"))
	g.MustAddNode("b", datagraph.V("2"))
	g.MustAddEdge("a", "loop", "a")
	g.MustAddEdge("a", "loop", "b")
	q := MustParse("ans(x) :- x -[loop]-> x")
	res, err := q.Eval(g, datagraph.MarkedNulls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Has("a") {
		t.Fatalf("self-loop answers = %v", res.Sorted())
	}
}

func TestDisconnectedConjuncts(t *testing.T) {
	g := triangleGraph(t)
	// Cross product of knowers and likers, projected to the likers.
	q := MustParse("ans(u) :- x -[knows]-> y, u -[likes]-> w")
	res, err := q.Eval(g, datagraph.MarkedNulls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || !res.Has("ann") || !res.Has("carl") {
		t.Fatalf("answers = %v", res.Sorted())
	}
}

func TestCertainConjunctive(t *testing.T) {
	gs := triangleGraph(t)
	m := core.NewMapping(core.R("knows", "f f"), core.R("likes", "l"))
	// Certain: two-hop-squared pairs that both like a shared post.
	q := MustParse("ans(x, y) :- x -[f f]-> y, x -[l]-> w, y -[l]-> w")
	// In every solution ann -f·f-> bob; but bob likes nothing, so only
	// pairs with shared likes survive... ann/carl are not f·f-connected
	// (they are f·f·f·f). Expect empty.
	res, err := Certain(m, gs, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("answers = %v", res.Sorted())
	}
	// Four-hop: ann to carl, both like p: certain.
	q2 := MustParse("ans(x, y) :- x -[f f f f]-> y, x -[l]-> w, y -[l]-> w")
	res2, err := Certain(m, gs, q2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 1 || !res2.Has("ann", "carl") {
		t.Fatalf("answers = %v", res2.Sorted())
	}
	// Tuples through null nodes are dropped.
	q3 := MustParse("ans(x, y) :- x -[f]-> y")
	res3, err := Certain(m, gs, q3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Len() != 0 {
		t.Fatalf("null tuples leaked: %v", res3.Sorted())
	}
}

func TestTupleSetOps(t *testing.T) {
	a, b := NewTupleSet(), NewTupleSet()
	n1 := datagraph.Node{ID: "x", Value: datagraph.V("1")}
	n2 := datagraph.Node{ID: "y", Value: datagraph.V("2")}
	a.Add(Tuple{n1, n2})
	b.Add(Tuple{n1, n2})
	b.Add(Tuple{n2, n1})
	if !a.SubsetOf(b) || b.SubsetOf(a) || a.Equal(b) {
		t.Fatal("set relations wrong")
	}
	if len(b.Sorted()) != 2 {
		t.Fatal("sorted wrong")
	}
}

func TestValidate(t *testing.T) {
	q := &Query{Head: []Var{"x"}}
	if err := q.Validate(); err == nil {
		t.Fatal("no atoms must fail")
	}
}
