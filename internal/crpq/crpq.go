// Package crpq implements conjunctive data RPQs: conjunctive queries whose
// atoms are binary data RPQs (REE, REM or navigational RPQs). The paper
// discusses conjunctive RPQs as one of the navigational classes with coNP
// certain-answer complexity (Section 5, citing [8,12]); this package
// extends the library to the data-carrying version and reuses the
// Section 7 machinery: conjunctions of homomorphism-closed atoms are
// homomorphism-closed, so certain answers over SQL-null targets are
// computed on the universal solution and null-carrying tuples dropped
// (Theorem 4 lifts pointwise).
//
// Concrete syntax (Parse):
//
//	ans(x, y) :- x -[knows knows]-> z, z -[(likes likes)=]-> y
//
// Atom bodies default to REE; prefix with "rem:" or "rpq:" to select the
// other languages, e.g. z -[rem: !v.(a[v=])+]-> y.
package crpq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/datagraph"
	"repro/internal/ree"
	"repro/internal/rem"
	"repro/internal/rpq"
)

// Var is a query variable.
type Var string

// Atom is one conjunct: From and To are variables, Query the binary data
// RPQ between them.
type Atom struct {
	From, To Var
	Query    core.Query
	// Text is the original body text, kept for String.
	Text string
}

// Query is a conjunctive data RPQ with a projection head.
type Query struct {
	Head  []Var
	Atoms []Atom
}

// Validate checks that every head variable occurs in some atom and that
// there is at least one atom.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("crpq: query has no atoms")
	}
	vars := q.vars()
	for _, h := range q.Head {
		if _, ok := vars[h]; !ok {
			return fmt.Errorf("crpq: head variable %s not used in any atom", h)
		}
	}
	return nil
}

func (q *Query) vars() map[Var]struct{} {
	out := make(map[Var]struct{})
	for _, a := range q.Atoms {
		out[a.From] = struct{}{}
		out[a.To] = struct{}{}
	}
	return out
}

func (q *Query) String() string {
	heads := make([]string, len(q.Head))
	for i, h := range q.Head {
		heads[i] = string(h)
	}
	atoms := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = fmt.Sprintf("%s -[%s]-> %s", a.From, a.Text, a.To)
	}
	return fmt.Sprintf("ans(%s) :- %s", strings.Join(heads, ", "), strings.Join(atoms, ", "))
}

// Tuple is one answer: the nodes bound to the head variables, in order.
type Tuple []datagraph.Node

func (t Tuple) key() string {
	parts := make([]string, len(t))
	for i, n := range t {
		parts[i] = string(n.ID)
	}
	return strings.Join(parts, "\x00")
}

// TupleSet is a set of answers.
type TupleSet struct {
	m map[string]Tuple
}

// NewTupleSet returns an empty set.
func NewTupleSet() *TupleSet { return &TupleSet{m: make(map[string]Tuple)} }

// Add inserts a tuple.
func (s *TupleSet) Add(t Tuple) { s.m[t.key()] = t }

// Len returns the number of tuples.
func (s *TupleSet) Len() int { return len(s.m) }

// Has reports membership by node ids.
func (s *TupleSet) Has(ids ...datagraph.NodeID) bool {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	_, ok := s.m[strings.Join(parts, "\x00")]
	return ok
}

// Sorted returns tuples in deterministic order.
func (s *TupleSet) Sorted() []Tuple {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Equal reports set equality on id tuples.
func (s *TupleSet) Equal(t *TupleSet) bool {
	if s.Len() != t.Len() {
		return false
	}
	for k := range s.m {
		if _, ok := t.m[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ t on id tuples.
func (s *TupleSet) SubsetOf(t *TupleSet) bool {
	for k := range s.m {
		if _, ok := t.m[k]; !ok {
			return false
		}
	}
	return true
}

// Eval computes the answers of the conjunctive query over g: a backtracking
// join over the atom relations, atoms ordered greedily by connectivity to
// already-bound variables.
func (q *Query) Eval(g *datagraph.Graph, mode datagraph.CompareMode) (*TupleSet, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Materialise each atom's relation once.
	rels := make([]*datagraph.PairSet, len(q.Atoms))
	for i, a := range q.Atoms {
		rels[i] = a.Query.Eval(g, mode)
	}
	// Order atoms: start from the first, then prefer atoms sharing a bound
	// variable (simple greedy join order).
	order := joinOrder(q.Atoms)
	// Index relations by From and To for bound-variable lookups.
	type index struct {
		byFrom map[int][]int
		byTo   map[int][]int
		pairs  []datagraph.Pair
	}
	idx := make([]index, len(q.Atoms))
	for i, rel := range rels {
		ix := index{byFrom: map[int][]int{}, byTo: map[int][]int{}}
		rel.Each(func(p datagraph.Pair) {
			ix.pairs = append(ix.pairs, p)
		})
		sort.Slice(ix.pairs, func(a, b int) bool {
			if ix.pairs[a].From != ix.pairs[b].From {
				return ix.pairs[a].From < ix.pairs[b].From
			}
			return ix.pairs[a].To < ix.pairs[b].To
		})
		for pi, p := range ix.pairs {
			ix.byFrom[p.From] = append(ix.byFrom[p.From], pi)
			ix.byTo[p.To] = append(ix.byTo[p.To], pi)
		}
		idx[i] = ix
	}

	binding := make(map[Var]int)
	out := NewTupleSet()
	var rec func(k int)
	rec = func(k int) {
		if k == len(order) {
			tuple := make(Tuple, len(q.Head))
			for i, h := range q.Head {
				tuple[i] = g.Node(binding[h])
			}
			out.Add(tuple)
			return
		}
		ai := order[k]
		a := q.Atoms[ai]
		ix := idx[ai]
		fromBound, fromOK := binding[a.From]
		toBound, toOK := binding[a.To]
		try := func(p datagraph.Pair) {
			if fromOK && p.From != fromBound {
				return
			}
			if toOK && p.To != toBound {
				return
			}
			if !fromOK {
				binding[a.From] = p.From
			}
			// Self-join variable (a.From == a.To) needs p.From == p.To.
			if a.From == a.To && p.From != p.To {
				if !fromOK {
					delete(binding, a.From)
				}
				return
			}
			if !toOK {
				binding[a.To] = p.To
			}
			rec(k + 1)
			if !fromOK {
				delete(binding, a.From)
			}
			if !toOK && a.From != a.To {
				delete(binding, a.To)
			}
		}
		switch {
		case fromOK:
			for _, pi := range ix.byFrom[fromBound] {
				try(ix.pairs[pi])
			}
		case toOK:
			for _, pi := range ix.byTo[toBound] {
				try(ix.pairs[pi])
			}
		default:
			for _, p := range ix.pairs {
				try(p)
			}
		}
	}
	rec(0)
	return out, nil
}

// joinOrder returns atom indices such that after the first, each atom
// shares a variable with an earlier one when possible.
func joinOrder(atoms []Atom) []int {
	n := len(atoms)
	used := make([]bool, n)
	bound := map[Var]struct{}{}
	var order []int
	pick := func(i int) {
		used[i] = true
		bound[atoms[i].From] = struct{}{}
		bound[atoms[i].To] = struct{}{}
		order = append(order, i)
	}
	pick(0)
	for len(order) < n {
		found := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			_, f := bound[atoms[i].From]
			_, t := bound[atoms[i].To]
			if f || t {
				found = i
				break
			}
		}
		if found < 0 { // disconnected component: take the next unused
			for i := 0; i < n; i++ {
				if !used[i] {
					found = i
					break
				}
			}
		}
		pick(found)
	}
	return order
}

// Certain computes the certain answers over SQL-null targets (the
// Theorem 4 route, lifted to conjunctions of homomorphism-closed atoms):
// evaluate on the universal solution under SQL-null semantics and keep only
// tuples without null nodes.
func Certain(m *core.Mapping, gs *datagraph.Graph, q *Query) (*TupleSet, error) {
	u, err := core.UniversalSolution(m, gs)
	if err != nil {
		return nil, err
	}
	res, err := q.Eval(u, datagraph.SQLNulls)
	if err != nil {
		return nil, err
	}
	out := NewTupleSet()
	for _, tup := range res.Sorted() {
		ok := true
		for _, n := range tup {
			if n.IsNullNode() {
				ok = false
				break
			}
		}
		if ok {
			out.Add(tup)
		}
	}
	return out, nil
}

// Parse reads the concrete syntax documented in the package comment.
func Parse(input string) (*Query, error) {
	parts := strings.SplitN(input, ":-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("crpq: missing ':-'")
	}
	head, err := parseHead(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, err
	}
	atoms, err := parseAtoms(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, err
	}
	q := &Query{Head: head, Atoms: atoms}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

func parseHead(s string) ([]Var, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("crpq: head must look like ans(x, y)")
	}
	inner := s[open+1 : len(s)-1]
	var out []Var
	for _, f := range strings.Split(inner, ",") {
		v := strings.TrimSpace(f)
		if v == "" {
			return nil, fmt.Errorf("crpq: empty head variable")
		}
		out = append(out, Var(v))
	}
	return out, nil
}

// parseAtoms splits on commas at bracket depth 0 (REM bodies contain
// brackets and binder commas inside -[...]->).
func parseAtoms(s string) ([]Atom, error) {
	var atoms []Atom
	depth := 0
	start := 0
	flush := func(end int) error {
		text := strings.TrimSpace(s[start:end])
		if text == "" {
			return fmt.Errorf("crpq: empty atom")
		}
		a, err := parseAtom(text)
		if err != nil {
			return err
		}
		atoms = append(atoms, a)
		return nil
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(len(s)); err != nil {
		return nil, err
	}
	return atoms, nil
}

func parseAtom(s string) (Atom, error) {
	open := strings.Index(s, "-[")
	close := strings.LastIndex(s, "]->")
	if open < 0 || close < 0 || close < open {
		return Atom{}, fmt.Errorf("crpq: atom %q must look like x -[expr]-> y", s)
	}
	from := Var(strings.TrimSpace(s[:open]))
	to := Var(strings.TrimSpace(s[close+3:]))
	body := strings.TrimSpace(s[open+2 : close])
	if from == "" || to == "" || body == "" {
		return Atom{}, fmt.Errorf("crpq: malformed atom %q", s)
	}
	var q core.Query
	var err error
	switch {
	case strings.HasPrefix(body, "rem:"):
		q, err = rem.ParseQuery(strings.TrimSpace(strings.TrimPrefix(body, "rem:")))
	case strings.HasPrefix(body, "rpq:"):
		var nav *rpq.Query
		nav, err = rpq.Parse(strings.TrimSpace(strings.TrimPrefix(body, "rpq:")))
		if err == nil {
			q = core.NavQuery{Q: nav}
		}
	default:
		q, err = ree.ParseQuery(body)
	}
	if err != nil {
		return Atom{}, fmt.Errorf("crpq: atom %q: %v", s, err)
	}
	return Atom{From: from, To: to, Query: q, Text: body}, nil
}
