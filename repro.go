// Package repro is the public facade of the reproduction of "Schema
// Mappings for Data Graphs" (Francis & Libkin, PODS 2017). It re-exports
// the data-graph model, the query languages (RPQ, REE, REM, GXPath-core~),
// graph schema mappings, solution builders and every certain-answer
// algorithm the paper proves correct, so downstream users can depend on a
// single import:
//
//	import "repro"
//
//	gs := repro.NewGraph()
//	gs.MustAddNode("ann", repro.V("30"))
//	...
//	m := repro.NewMapping(repro.R("knows", "follows follows"))
//	answers, err := repro.CertainNull(m, gs, repro.MustREE("(follows follows)!="))
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction results; the subsystems live in internal/ packages.
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/crpq"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/gxpath"
	"repro/internal/ree"
	"repro/internal/rem"
	"repro/internal/rpq"
)

// Data-graph model (internal/datagraph).
type (
	// Graph is a data graph: nodes (id, value) and labeled edges.
	Graph = datagraph.Graph
	// Node is a pair (id, value).
	Node = datagraph.Node
	// NodeID identifies a node.
	NodeID = datagraph.NodeID
	// Value is a data value or the SQL null.
	Value = datagraph.Value
	// DataPath is an alternating sequence of values and labels.
	DataPath = datagraph.DataPath
	// CompareMode selects marked-null or SQL-null comparison semantics.
	CompareMode = datagraph.CompareMode
	// PairSet is a set of node-index pairs (query results).
	PairSet = datagraph.PairSet
)

// Comparison modes.
const (
	MarkedNulls = datagraph.MarkedNulls
	SQLNulls    = datagraph.SQLNulls
)

// NewGraph returns an empty data graph.
func NewGraph() *Graph { return datagraph.New() }

// V returns the data value with the given string representation.
func V(s string) Value { return datagraph.V(s) }

// Null returns the SQL null value of Section 7.
func Null() Value { return datagraph.Null() }

// ParseGraph reads the line-based graph text format.
func ParseGraph(s string) (*Graph, error) { return datagraph.ParseString(s) }

// Mappings and certain answers (internal/core).
type (
	// Mapping is a graph schema mapping (Definition 1).
	Mapping = core.Mapping
	// Rule is one mapping rule (q, q′).
	Rule = core.Rule
	// Answers is a set of certain answers.
	Answers = core.Answers
	// Query is the interface certain-answer algorithms accept.
	Query = core.Query
	// ExactOptions bounds the exponential exact search.
	ExactOptions = core.ExactOptions
)

// NewMapping builds a mapping from rules.
func NewMapping(rules ...Rule) *Mapping { return core.NewMapping(rules...) }

// R builds a rule from rex-syntax source and target RPQs.
func R(source, target string) Rule { return core.R(source, target) }

// ParseMapping reads the line-based mapping text format.
func ParseMapping(s string) (*Mapping, error) { return core.ParseMappingString(s) }

// UniversalSolution builds the SQL-null universal solution (Section 7).
func UniversalSolution(m *Mapping, gs *Graph) (*Graph, error) {
	return core.UniversalSolution(m, gs)
}

// LeastInformativeSolution builds the fresh-value solution (Section 8).
func LeastInformativeSolution(m *Mapping, gs *Graph) (*Graph, error) {
	return core.LeastInformativeSolution(m, gs)
}

// CertainNull computes 2ⁿ_M(Q, Gs) via the universal solution (Theorem 4):
// tractable, exact for data RPQs over targets with SQL nulls, and an
// underapproximation of the classical certain answers.
func CertainNull(m *Mapping, gs *Graph, q Query) (*Answers, error) {
	return core.CertainNull(m, gs, q)
}

// CertainLeastInformative computes 2_M(Q, Gs) for equality-only queries
// (REM=/REE=, Theorem 5).
func CertainLeastInformative(m *Mapping, gs *Graph, q Query) (*Answers, error) {
	return core.CertainLeastInformative(m, gs, q)
}

// CertainExact computes 2_M(Q, Gs) exactly by exponential search
// (Theorem 2's coNP bound made deterministic); see ExactOptions.
func CertainExact(m *Mapping, gs *Graph, q Query, opts ExactOptions) (*Answers, error) {
	return core.CertainExact(m, gs, q, opts)
}

// CertainOneInequality decides one pair for paths-with-tests with at most
// one inequality in polynomial time (Proposition 4).
func CertainOneInequality(m *Mapping, gs *Graph, q *REEQuery, from, to NodeID) (bool, error) {
	return core.CertainOneInequality(m, gs, q, from, to, core.OneNeqOptions{})
}

// CertainDataPathArbitrary decides one pair for a path-with-tests query
// under an *arbitrary* (possibly non-relational) GSM — the Proposition 5
// procedure, exponential in the mapping's word choices and fresh nodes.
func CertainDataPathArbitrary(m *Mapping, gs *Graph, q *REEQuery, from, to NodeID) (bool, error) {
	return core.CertainDataPathArbitrary(m, gs, q, from, to, core.Prop5Options{})
}

// The concurrent evaluation engine (internal/engine): certain answers
// computed over the per-label adjacency indexes by a pool of GOMAXPROCS
// workers, sharding independent queries and independent source-node
// frontiers. Output is deterministic and identical to the sequential
// algorithms.
type (
	// EngineOptions configure the engine's worker pool.
	EngineOptions = engine.Options
)

// Eval computes the certain answers 2ⁿ_M(Q, Gs) (Theorem 4) for every
// query concurrently, returning one answer set per query, index-aligned.
// The universal solution is built once and shared by all workers.
func Eval(ctx context.Context, m *Mapping, gs *Graph, queries ...Query) ([]*Answers, error) {
	return engine.Eval(ctx, m, gs, queries...)
}

// EvalOpts is Eval with explicit worker-pool options.
func EvalOpts(ctx context.Context, m *Mapping, gs *Graph, opts EngineOptions, queries ...Query) ([]*Answers, error) {
	return engine.EvalOpts(ctx, m, gs, opts, queries...)
}

// CertainNullParallel is CertainNull on the worker-pool engine.
func CertainNullParallel(ctx context.Context, m *Mapping, gs *Graph, q Query) (*Answers, error) {
	return engine.CertainNull(ctx, m, gs, q, EngineOptions{})
}

// CertainLeastInformativeParallel is CertainLeastInformative on the
// worker-pool engine.
func CertainLeastInformativeParallel(ctx context.Context, m *Mapping, gs *Graph, q Query) (*Answers, error) {
	return engine.CertainLeastInformative(ctx, m, gs, q, EngineOptions{})
}

// EvalGraphParallel evaluates one query over one graph with the start-node
// frontier sharded across the worker pool — the parallel counterpart of
// q.Eval(g, mode).
func EvalGraphParallel(ctx context.Context, g *Graph, q Query, mode CompareMode) (*PairSet, error) {
	return engine.EvalGraph(ctx, g, q, mode, EngineOptions{})
}

// Query languages.
type (
	// REEQuery is a regular expression with equality (equality RPQ).
	REEQuery = ree.Query
	// REMQuery is a regular expression with memory (memory RPQ).
	REMQuery = rem.Query
	// RPQQuery is a purely navigational regular path query.
	RPQQuery = rpq.Query
	// GXNodeExpr is a GXPath-core~ node expression.
	GXNodeExpr = gxpath.NodeExpr
	// GXPathExpr is a GXPath-core~ path expression.
	GXPathExpr = gxpath.PathExpr
)

// ParseREE parses an equality RPQ, e.g. "(a b)=" or ".* (.+)= .*".
func ParseREE(s string) (*REEQuery, error) { return ree.ParseQuery(s) }

// MustREE is ParseREE that panics on error.
func MustREE(s string) *REEQuery { return ree.MustParseQuery(s) }

// ParseREM parses a memory RPQ, e.g. "!x.(a[x!=])+".
func ParseREM(s string) (*REMQuery, error) { return rem.ParseQuery(s) }

// MustREM is ParseREM that panics on error.
func MustREM(s string) *REMQuery { return rem.MustParseQuery(s) }

// ParseRPQ parses a navigational RPQ wrapped for certain-answer APIs.
func ParseRPQ(s string) (Query, error) {
	q, err := rpq.Parse(s)
	if err != nil {
		return nil, err
	}
	return core.NavQuery{Q: q}, nil
}

// ParseGXNode parses a GXPath-core~ node expression, e.g. "<a (a- b)=>".
func ParseGXNode(s string) (GXNodeExpr, error) { return gxpath.ParseNode(s) }

// ParseGXPath parses a GXPath-core~ path expression.
func ParseGXPath(s string) (GXPathExpr, error) { return gxpath.ParsePath(s) }

// EvalGXNode computes [[φ]]_G as node indices (Figure 1 semantics).
func EvalGXNode(g *Graph, phi GXNodeExpr, mode CompareMode) []int {
	return gxpath.NodesSatisfying(g, phi, mode)
}

// EvalGXPath computes [[α]]_G (Figure 1 semantics).
func EvalGXPath(g *Graph, alpha GXPathExpr, mode CompareMode) *PairSet {
	return gxpath.EvalPath(g, alpha, mode)
}

// Conjunctive data RPQs (library extension; internal/crpq).
type (
	// ConjunctiveQuery is a conjunctive query over binary data-RPQ atoms.
	ConjunctiveQuery = crpq.Query
	// TupleSet holds conjunctive-query answers.
	TupleSet = crpq.TupleSet
)

// ParseConjunctive parses e.g. "ans(x, y) :- x -[knows knows]-> z, z -[(likes)=]-> y".
func ParseConjunctive(s string) (*ConjunctiveQuery, error) { return crpq.Parse(s) }

// CertainConjunctive computes certain answers of a conjunctive data RPQ
// over SQL-null targets (Theorem 4 lifted to conjunctions).
func CertainConjunctive(m *Mapping, gs *Graph, q *ConjunctiveQuery) (*TupleSet, error) {
	return crpq.Certain(m, gs, q)
}
