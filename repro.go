// Package repro is the public facade of the reproduction of "Schema
// Mappings for Data Graphs" (Francis & Libkin, PODS 2017). It re-exports
// the data-graph model, the query languages (RPQ, REE, REM, GXPath-core~),
// graph schema mappings, solution builders and every certain-answer
// algorithm the paper proves correct, so downstream users can depend on a
// single import.
//
// The serving API is session-centric (see session.go): compile the mapping
// once, open a Session per source graph, and stream queries against the
// memoized solutions:
//
//	gs := repro.NewGraph()
//	gs.MustAddNode("ann", repro.V("30"))
//	...
//	cm, err := repro.Compile(repro.NewMapping(repro.R("knows", "follows follows")))
//	s, err := repro.NewSession(cm, gs)
//	answers, err := s.CertainNull(ctx, repro.MustREE("(follows follows)!="))
//
// The free functions below (CertainNull, UniversalSolution, ...) predate
// sessions; they remain as thin wrappers that build a throwaway session per
// call, re-deriving every solution. Prefer sessions for anything that asks
// more than one question of the same (mapping, source graph) pair.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction results; the subsystems live in internal/ packages.
package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/crpq"
	"repro/internal/datagraph"
	"repro/internal/engine"
	"repro/internal/gxpath"
	"repro/internal/ree"
	"repro/internal/rem"
	"repro/internal/rpq"
)

// Data-graph model (internal/datagraph).
type (
	// Graph is a data graph: nodes (id, value) and labeled edges.
	Graph = datagraph.Graph
	// Node is a pair (id, value).
	Node = datagraph.Node
	// NodeID identifies a node.
	NodeID = datagraph.NodeID
	// Value is a data value or the SQL null.
	Value = datagraph.Value
	// DataPath is an alternating sequence of values and labels.
	DataPath = datagraph.DataPath
	// CompareMode selects marked-null or SQL-null comparison semantics.
	CompareMode = datagraph.CompareMode
	// PairSet is a set of node-index pairs (query results).
	PairSet = datagraph.PairSet
)

// Comparison modes.
const (
	MarkedNulls = datagraph.MarkedNulls
	SQLNulls    = datagraph.SQLNulls
)

// NewGraph returns an empty data graph.
func NewGraph() *Graph { return datagraph.New() }

// V returns the data value with the given string representation.
func V(s string) Value { return datagraph.V(s) }

// Null returns the SQL null value of Section 7.
func Null() Value { return datagraph.Null() }

// ParseGraph reads the line-based graph text format.
func ParseGraph(s string) (*Graph, error) { return datagraph.ParseString(s) }

// Mappings and certain answers (internal/core).
type (
	// Mapping is a graph schema mapping (Definition 1).
	Mapping = core.Mapping
	// Rule is one mapping rule (q, q′).
	Rule = core.Rule
	// Answers is a set of certain answers.
	Answers = core.Answers
	// Query is the interface certain-answer algorithms accept.
	Query = core.Query
	// ExactOptions bounds the exponential exact search.
	ExactOptions = core.ExactOptions
)

// NewMapping builds a mapping from rules.
func NewMapping(rules ...Rule) *Mapping { return core.NewMapping(rules...) }

// NewAnswers returns an empty answer set.
func NewAnswers() *Answers { return core.NewAnswers() }

// R builds a rule from rex-syntax source and target RPQs.
func R(source, target string) Rule { return core.R(source, target) }

// ParseMapping reads the line-based mapping text format.
func ParseMapping(s string) (*Mapping, error) { return core.ParseMappingString(s) }

// throwawaySession builds the single-use session behind the deprecated free
// functions.
func throwawaySession(m *Mapping, gs *Graph, opts ...Option) (*Session, error) {
	cm, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return NewSession(cm, gs, opts...)
}

// UniversalSolution builds the SQL-null universal solution (Section 7).
//
// Deprecated: use [NewSession] and [Session.UniversalSolution], which
// memoize the solution for reuse; this wrapper rebuilds it per call.
func UniversalSolution(m *Mapping, gs *Graph) (*Graph, error) {
	s, err := throwawaySession(m, gs)
	if err != nil {
		return nil, err
	}
	return s.UniversalSolution(context.Background())
}

// LeastInformativeSolution builds the fresh-value solution (Section 8).
//
// Deprecated: use [NewSession] and [Session.LeastInformativeSolution].
func LeastInformativeSolution(m *Mapping, gs *Graph) (*Graph, error) {
	s, err := throwawaySession(m, gs)
	if err != nil {
		return nil, err
	}
	return s.LeastInformativeSolution(context.Background())
}

// CertainNull computes 2ⁿ_M(Q, Gs) via the universal solution (Theorem 4):
// tractable, exact for data RPQs over targets with SQL nulls, and an
// underapproximation of the classical certain answers.
//
// Deprecated: use [NewSession] and [Session.CertainNull], which share the
// universal solution across calls; this wrapper rebuilds it per call.
func CertainNull(m *Mapping, gs *Graph, q Query) (*Answers, error) {
	s, err := throwawaySession(m, gs)
	if err != nil {
		return nil, err
	}
	return s.CertainNull(context.Background(), q)
}

// CertainLeastInformative computes 2_M(Q, Gs) for equality-only queries
// (REM=/REE=, Theorem 5).
//
// Deprecated: use [NewSession] and [Session.CertainLeastInformative].
func CertainLeastInformative(m *Mapping, gs *Graph, q Query) (*Answers, error) {
	s, err := throwawaySession(m, gs)
	if err != nil {
		return nil, err
	}
	return s.CertainLeastInformative(context.Background(), q)
}

// CertainExact computes 2_M(Q, Gs) exactly by exponential search
// (Theorem 2's coNP bound made deterministic); see ExactOptions.
//
// Deprecated: use [NewSession] with [WithMaxNulls] and
// [Session.CertainExact]; this wrapper rebuilds the universal solution per
// call.
func CertainExact(m *Mapping, gs *Graph, q Query, opts ExactOptions) (*Answers, error) {
	var sopts []Option
	if opts.MaxNulls != 0 {
		if opts.MaxNulls < 0 {
			return nil, fmt.Errorf("%w: MaxNulls %d is negative", ErrBadOptions, opts.MaxNulls)
		}
		sopts = append(sopts, WithMaxNulls(opts.MaxNulls))
	}
	s, err := throwawaySession(m, gs, sopts...)
	if err != nil {
		return nil, err
	}
	return s.CertainExact(context.Background(), q)
}

// CertainOneInequality decides one pair for paths-with-tests with at most
// one inequality in polynomial time (Proposition 4).
//
// Deprecated: use [NewSession] and [Session.CertainOneInequality].
func CertainOneInequality(m *Mapping, gs *Graph, q *REEQuery, from, to NodeID) (bool, error) {
	s, err := throwawaySession(m, gs)
	if err != nil {
		return false, err
	}
	return s.CertainOneInequality(context.Background(), q, from, to)
}

// CertainDataPathArbitrary decides one pair for a path-with-tests query
// under an *arbitrary* (possibly non-relational) GSM — the Proposition 5
// procedure, exponential in the mapping's word choices and fresh nodes.
//
// Deprecated: use [NewSession] and [Session.CertainDataPathArbitrary].
func CertainDataPathArbitrary(m *Mapping, gs *Graph, q *REEQuery, from, to NodeID) (bool, error) {
	s, err := throwawaySession(m, gs)
	if err != nil {
		return false, err
	}
	return s.CertainDataPathArbitrary(context.Background(), q, from, to)
}

// The concurrent evaluation engine (internal/engine): certain answers
// computed over the per-label adjacency indexes by a pool of GOMAXPROCS
// workers, sharding independent queries and independent source-node
// frontiers. Output is deterministic and identical to the sequential
// algorithms.
type (
	// EngineOptions configure the engine's worker pool.
	EngineOptions = engine.Options
)

// Eval computes the certain answers 2ⁿ_M(Q, Gs) (Theorem 4) for every
// query concurrently, returning one answer set per query, index-aligned.
// The universal solution is built once and shared by all workers.
//
// Deprecated: use [NewSession] and [Session.Eval], which share the
// universal solution across batches; this wrapper rebuilds it per call.
func Eval(ctx context.Context, m *Mapping, gs *Graph, queries ...Query) ([]*Answers, error) {
	return EvalOpts(ctx, m, gs, EngineOptions{}, queries...)
}

// EvalOpts is Eval with explicit worker-pool options.
//
// Deprecated: use [NewSession] with [WithWorkers]/[WithChunkSize] and
// [Session.Eval].
func EvalOpts(ctx context.Context, m *Mapping, gs *Graph, opts EngineOptions, queries ...Query) ([]*Answers, error) {
	var sopts []Option
	if opts.Workers > 0 {
		sopts = append(sopts, WithWorkers(opts.Workers))
	}
	if opts.ChunkSize > 0 {
		sopts = append(sopts, WithChunkSize(opts.ChunkSize))
	}
	s, err := throwawaySession(m, gs, sopts...)
	if err != nil {
		return nil, err
	}
	return s.Eval(ctx, queries...)
}

// CertainNullParallel is CertainNull on the worker-pool engine.
//
// Deprecated: use [NewSession] and [Session.CertainNull], which is
// engine-backed and shares the universal solution across calls.
func CertainNullParallel(ctx context.Context, m *Mapping, gs *Graph, q Query) (*Answers, error) {
	s, err := throwawaySession(m, gs)
	if err != nil {
		return nil, err
	}
	return s.CertainNull(ctx, q)
}

// CertainLeastInformativeParallel is CertainLeastInformative on the
// worker-pool engine.
//
// Deprecated: use [NewSession] and [Session.CertainLeastInformative].
func CertainLeastInformativeParallel(ctx context.Context, m *Mapping, gs *Graph, q Query) (*Answers, error) {
	s, err := throwawaySession(m, gs)
	if err != nil {
		return nil, err
	}
	return s.CertainLeastInformative(ctx, q)
}

// EvalGraphParallel evaluates one query over one graph with the start-node
// frontier sharded across the worker pool — the parallel counterpart of
// q.Eval(g, mode).
func EvalGraphParallel(ctx context.Context, g *Graph, q Query, mode CompareMode) (*PairSet, error) {
	return engine.EvalGraph(ctx, g, q, mode, EngineOptions{})
}

// Query languages.
type (
	// REEQuery is a regular expression with equality (equality RPQ).
	REEQuery = ree.Query
	// REMQuery is a regular expression with memory (memory RPQ).
	REMQuery = rem.Query
	// RPQQuery is a purely navigational regular path query.
	RPQQuery = rpq.Query
	// GXNodeExpr is a GXPath-core~ node expression.
	GXNodeExpr = gxpath.NodeExpr
	// GXPathExpr is a GXPath-core~ path expression.
	GXPathExpr = gxpath.PathExpr
)

// ParseREE parses an equality RPQ, e.g. "(a b)=" or ".* (.+)= .*".
func ParseREE(s string) (*REEQuery, error) { return ree.ParseQuery(s) }

// MustREE is ParseREE that panics on error.
func MustREE(s string) *REEQuery { return ree.MustParseQuery(s) }

// ParseREM parses a memory RPQ, e.g. "!x.(a[x!=])+".
func ParseREM(s string) (*REMQuery, error) { return rem.ParseQuery(s) }

// MustREM is ParseREM that panics on error.
func MustREM(s string) *REMQuery { return rem.MustParseQuery(s) }

// ParseRPQ parses a navigational RPQ wrapped for certain-answer APIs.
func ParseRPQ(s string) (Query, error) {
	q, err := rpq.Parse(s)
	if err != nil {
		return nil, err
	}
	return core.NavQuery{Q: q}, nil
}

// ParseGXNode parses a GXPath-core~ node expression, e.g. "<a (a- b)=>".
func ParseGXNode(s string) (GXNodeExpr, error) { return gxpath.ParseNode(s) }

// ParseGXPath parses a GXPath-core~ path expression.
func ParseGXPath(s string) (GXPathExpr, error) { return gxpath.ParsePath(s) }

// EvalGXNode computes [[φ]]_G as node indices (Figure 1 semantics).
func EvalGXNode(g *Graph, phi GXNodeExpr, mode CompareMode) []int {
	return gxpath.NodesSatisfying(g, phi, mode)
}

// EvalGXPath computes [[α]]_G (Figure 1 semantics).
func EvalGXPath(g *Graph, alpha GXPathExpr, mode CompareMode) *PairSet {
	return gxpath.EvalPath(g, alpha, mode)
}

// Conjunctive data RPQs (library extension; internal/crpq).
type (
	// ConjunctiveQuery is a conjunctive query over binary data-RPQ atoms.
	ConjunctiveQuery = crpq.Query
	// TupleSet holds conjunctive-query answers.
	TupleSet = crpq.TupleSet
)

// ParseConjunctive parses e.g. "ans(x, y) :- x -[knows knows]-> z, z -[(likes)=]-> y".
func ParseConjunctive(s string) (*ConjunctiveQuery, error) { return crpq.Parse(s) }

// CertainConjunctive computes certain answers of a conjunctive data RPQ
// over SQL-null targets (Theorem 4 lifted to conjunctions).
func CertainConjunctive(m *Mapping, gs *Graph, q *ConjunctiveQuery) (*TupleSet, error) {
	return crpq.Certain(m, gs, q)
}
